// ReqdServer: the TCP front end of the multi-tenant quantile service.
// Accepts connections on a loopback/IPv4 address and speaks the
// length-prefixed protocol of service/wire_protocol.h against a shared
// SketchRegistry.
//
// Concurrency model: an epoll reactor (the C10K shape). One accept
// thread distributes accepted fds round-robin over N event-loop workers
// (default: hardware concurrency); each worker owns an epoll set, an
// eventfd for wakeups/handoff, a timer wheel, and the full state of the
// connections assigned to it -- no connection is ever touched by two
// threads, which is what keeps the reactor trivially race-free under
// TSan. Per connection the worker drives a small non-blocking state
// machine:
//
//   readable --> recv until EAGAIN --> FrameDecoder --> HandleFrame
//      ^                                                   |
//      |        (responses encode into a per-connection    v
//   EPOLLOUT <-- output buffer; writev flushes both -- staging buffer
//                halves in one syscall, EAGAIN arms EPOLLOUT)
//
// The output queue is a double buffer: `pending` is the run currently
// being flushed (from an offset) and `staging` is where new responses
// encode; one gather-write (WritevNonBlocking) sends both, and when
// `pending` drains the two swap so allocations recycle. A peer that
// queries faster than it reads answers trips max_outbound_bytes and has
// its reads paused until the queue flushes -- backpressure, not OOM.
//
// Hostile-network posture (exercised by tests/service_chaos_test.cc and
// tests/service_reactor_test.cc via service/chaos_proxy.h):
//   * Idle reaping now runs on a per-worker timer wheel (25ms ticks,
//     lazy cancellation): re-arming on every delivered byte is a field
//     write, and a slow loris mid-frame is reaped after idle_timeout_ms
//     without the reactor ever polling per-connection.
//   * max_connections caps live connections. At the cap, a new
//     connection is answered with a single kOverloaded frame and closed
//     -- a typed rejection the client can back off on, never a silent
//     hang in the accept backlog.
//   * request_budget_ms bounds time-to-first-dispatch per frame. The
//     budget is stamped when the batch of bytes ARRIVES, so pipelined
//     frames queued behind a slow request inherit the wait they already
//     paid. A frame whose budget is spent before dispatch answers
//     kDeadlineExceeded with no work done; after dispatch only read-only
//     ops convert to kDeadlineExceeded -- a mutation that applied is
//     always acked (kAppend/kFlush carry the accepted count the client
//     reconciles against; answering "timeout" after the fact would
//     desync that accounting).
//   * A peer that takes NO response bytes for send_timeout_ms while the
//     server holds un-flushed output is closed (the write-stall reap;
//     the old thread-per-connection server blocked in send here).
//   * Drain() finishes in-flight frames, answers them, then closes:
//     the graceful half of shutdown, with Stop() as the hard half.
//   * Transient accept failures (EMFILE/ENFILE/ENOBUFS) back off instead
//     of hot-spinning: the listener stays readable, so retrying accept
//     immediately would burn a core until an fd frees.
//
// Error handling per frame:
//   * A malformed payload inside a well-delimited frame (bad opcode, bad
//     enum, truncated body) answers kBadRequest and the connection lives
//     on -- framing is still in sync.
//   * A corrupt length prefix (0 or > max payload) means the byte stream
//     itself has lost sync: the server answers one kBadRequest frame
//     best-effort and closes the connection once it flushes.
//   * Registry/engine exceptions map to statuses: MetricNotFound ->
//     kNotFound, MetricExists -> kExists, invalid_argument / logic_error /
//     runtime_error -> kBadRequest, anything else -> kError. The server
//     never dies on a request.
//
// Lifecycle: Start() binds/listens (port 0 picks an ephemeral port,
// re-read via port() -- how the tests and benches run parallel-safe
// loopback instances), builds the worker pool, and spawns the loops;
// Stop() shuts the listener, wakes every worker, and joins everything.
// The destructor calls Stop().
#ifndef REQSKETCH_SERVICE_REQD_SERVER_H_
#define REQSKETCH_SERVICE_REQD_SERVER_H_

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "persist/io_injector.h"
#include "service/sketch_registry.h"
#include "service/socket_util.h"
#include "service/wire_protocol.h"
#include "util/validation.h"

namespace req {
namespace service {

struct ReqdServerConfig {
  std::string bind_address = "127.0.0.1";
  // 0: pick an ephemeral port (read it back via port()).
  uint16_t port = 0;
  // Listen backlog. 0 = auto: scales with max_connections, floor 1024
  // (the old fixed 64 dropped SYNs under a C10K connect burst; the
  // kernel clamps to somaxconn either way).
  int backlog = 0;
  // Event-loop worker threads. 0 = hardware concurrency (min 1).
  uint32_t workers = 0;
  uint32_t max_frame_payload = kMaxFramePayload;
  // Connection cap; above it new connections get one kOverloaded frame
  // and a close instead of a worker slot. 0 = uncapped.
  uint64_t max_connections = 0;
  // Reap a connection that has gone this long without delivering a byte
  // (slow loris, dead NAT entries). 0 = never reap.
  uint64_t idle_timeout_ms = 0;
  // Per-frame time budget, stamped at batch arrival; exceeded budgets
  // answer kDeadlineExceeded (see the class comment for the mutation
  // carve-out). 0 = unbounded.
  uint64_t request_budget_ms = 0;
  // Close a connection whose peer takes no response bytes for this long
  // while output is queued (a blackholed downstream must not hold its
  // buffers forever). 0 = unbounded.
  uint64_t send_timeout_ms = 30000;
  // Pause reading a connection once its un-flushed responses exceed
  // this many bytes; reads resume when the queue drains. 0 = unbounded.
  uint64_t max_outbound_bytes = uint64_t{8} << 20;  // 8 MiB
  // Backoff after a transient accept() failure under fd exhaustion.
  uint64_t accept_backoff_ms = 50;
};

// A single-level timer wheel: kSlots slots of kTickMs, fds as entries.
// Scheduling and re-arming are O(1); cancellation is lazy -- a fired fd
// may be stale (connection closed or deadline moved), so the fire
// callback re-checks the connection's real deadlines and either acts or
// reschedules. Deadlines past the wheel's horizon park in the furthest
// slot and cascade from there (the reschedule-on-fire path).
class TimerWheel {
 public:
  static constexpr uint64_t kTickMs = 25;
  static constexpr uint64_t kSlots = 256;  // ~6.4s horizon

  explicit TimerWheel(SocketDeadline now) : now_tick_(TickOf(now)) {}

  bool empty() const { return entries_ == 0; }

  // Schedules a fire for `fd` no later than `at` (clamped to the
  // horizon, so possibly earlier); returns the actual fire time so the
  // caller can track the earliest pending fire per connection.
  SocketDeadline Schedule(int fd, SocketDeadline at) {
    uint64_t tick = std::max(TickOf(at), now_tick_ + 1);
    tick = std::min(tick, now_tick_ + kSlots - 1);
    slots_[tick % kSlots].push_back(fd);
    ++entries_;
    return SocketDeadline() + std::chrono::milliseconds(tick * kTickMs);
  }

  // Advances the wheel to `now`, invoking on_fire(fd) for every entry
  // whose slot has come due.
  template <typename OnFire>
  void Advance(SocketDeadline now, OnFire&& on_fire) {
    const uint64_t target = TickOf(now);
    while (now_tick_ < target && entries_ > 0) {
      ++now_tick_;
      std::vector<int>& slot = slots_[now_tick_ % kSlots];
      if (slot.empty()) continue;
      fired_.clear();
      fired_.swap(slot);
      entries_ -= fired_.size();
      for (int fd : fired_) on_fire(fd);
    }
    now_tick_ = std::max(now_tick_, target);
  }

 private:
  static uint64_t TickOf(SocketDeadline t) {
    return static_cast<uint64_t>(
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   t.time_since_epoch())
                   .count()) /
           kTickMs;
  }

  uint64_t now_tick_;
  uint64_t entries_ = 0;
  std::vector<int> fired_;  // scratch, reused across Advance calls
  std::array<std::vector<int>, kSlots> slots_;
};

class ReqdServer {
 public:
  explicit ReqdServer(SketchRegistry* registry,
                      const ReqdServerConfig& config = {})
      : registry_(registry), config_(config) {
    util::CheckArg(registry != nullptr, "registry must not be null");
  }

  ReqdServer(const ReqdServer&) = delete;
  ReqdServer& operator=(const ReqdServer&) = delete;

  ~ReqdServer() { Stop(); }

  static uint32_t EffectiveWorkers(const ReqdServerConfig& config) {
    if (config.workers > 0) return config.workers;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }

  static int EffectiveBacklog(const ReqdServerConfig& config) {
    if (config.backlog > 0) return config.backlog;
    const uint64_t scaled = std::max<uint64_t>(config.max_connections, 1024);
    return static_cast<int>(std::min<uint64_t>(scaled, 65535));
  }

  void Start() {
    util::CheckState(!running_.load(), "server already started");
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) throw std::runtime_error(ErrnoMessage("socket"));
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = ParseIPv4(config_.bind_address);
    addr.sin_port = htons(config_.port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error(ErrnoMessage("bind"));
    }
    if (::listen(fd.get(), EffectiveBacklog(config_)) != 0) {
      throw std::runtime_error(ErrnoMessage("listen"));
    }
    // Re-read the bound port (meaningful when config_.port == 0).
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      throw std::runtime_error(ErrnoMessage("getsockname"));
    }
    // Build the worker pool before going live so a failure here leaves
    // the server cleanly stopped (local vectors unwind themselves).
    const uint32_t n = EffectiveWorkers(config_);
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      auto w = std::make_unique<Worker>(SocketClock::now());
      w->epoll_fd.Reset(::epoll_create1(EPOLL_CLOEXEC));
      if (!w->epoll_fd.valid()) {
        throw std::runtime_error(ErrnoMessage("epoll_create1"));
      }
      w->event_fd.Reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
      if (!w->event_fd.valid()) {
        throw std::runtime_error(ErrnoMessage("eventfd"));
      }
      epoll_event ev{};
      ev.events = EPOLLIN;  // level-triggered: adoption drains it
      ev.data.fd = w->event_fd.get();
      if (::epoll_ctl(w->epoll_fd.get(), EPOLL_CTL_ADD, w->event_fd.get(),
                      &ev) != 0) {
        throw std::runtime_error(ErrnoMessage("epoll_ctl"));
      }
      workers.push_back(std::move(w));
    }
    port_ = ntohs(bound.sin_port);
    listen_fd_ = std::move(fd);
    workers_ = std::move(workers);
    running_.store(true);
    for (auto& w : workers_) {
      Worker* wp = w.get();
      wp->thread = std::thread([this, wp] { WorkerLoop(wp); });
    }
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  void Stop() {
    if (!running_.exchange(false)) return;
    // Wake a blocked accept() early (Linux returns EINVAL); the accept
    // loop's poll timeout bounds the wait even where shutdown() on a
    // listener is a no-op. The fd is closed only AFTER the join: closing
    // it while the accept thread still reads it would be a race (and a
    // potential fd-reuse hazard). The accept thread is joined before
    // the workers so no fd is pushed into an inbox nobody will sweep.
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    listen_fd_.Reset();
    for (auto& w : workers_) WakeWorker(w.get());
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
    workers_.clear();
  }

  // Graceful shutdown, phase one: stop taking new connections (they shed
  // as kOverloaded), let live connections answer the complete frames
  // they already hold, and close them. Waits up to timeout_ms for the
  // live-connection count to reach zero, then hard-stops whatever is
  // left.
  void Drain(uint64_t timeout_ms = 5000) {
    draining_.store(true, std::memory_order_release);
    for (auto& w : workers_) WakeWorker(w.get());
    const SocketDeadline deadline = DeadlineAfterMs(timeout_ms);
    while (running_.load(std::memory_order_acquire) &&
           SocketClock::now() < deadline) {
      if (live_connections_.load(std::memory_order_acquire) == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    Stop();
  }

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  // Event-loop workers currently running (0 when stopped).
  uint64_t WorkerCount() const { return workers_.size(); }

  // Monitoring counters (also exported over the wire via kStats).
  uint64_t ConnectionsAccepted() const { return connections_.load(); }
  uint64_t FramesServed() const { return frames_.load(); }
  // Connections that ended (EOF/reset) with a partial frame still
  // buffered -- each one is a client that died mid-send.
  uint64_t AbortedPartialFrames() const {
    return aborted_partial_frames_.load();
  }
  // Connections answered kOverloaded at the cap (or while draining).
  uint64_t ShedConnections() const { return shed_connections_.load(); }
  // Frames answered kDeadlineExceeded (budget spent).
  uint64_t DeadlineExceededCount() const { return deadline_exceeded_.load(); }
  // Connections reaped by the idle deadline.
  uint64_t IdleReaped() const { return idle_reaped_.load(); }
  // Transient accept() failures (EMFILE and friends) survived.
  uint64_t AcceptFailures() const { return accept_failures_.load(); }
  // Connections currently being served.
  uint64_t LiveConnections() const {
    return live_connections_.load(std::memory_order_acquire);
  }

 private:
  // Per-connection state, owned by exactly one worker. The output queue
  // is the double buffer described in the class comment: `pending` (from
  // `pending_off`) is being flushed, `staging` receives new responses.
  struct Conn {
    Conn(int raw_fd, uint32_t max_payload)
        : fd(raw_fd), decoder(max_payload) {}

    size_t OutboundBytes() const {
      return (pending.size() - pending_off) + staging.size();
    }

    ScopedFd fd;
    FrameDecoder decoder;
    std::vector<uint8_t> pending;
    size_t pending_off = 0;
    std::vector<uint8_t> staging;
    bool want_write = false;       // EPOLLOUT armed
    bool close_after_flush = false;  // stream desynced; error queued
    bool paused_read = false;      // backpressure: outbound over the cap
    SocketDeadline idle_deadline = NoDeadline();
    SocketDeadline write_deadline = NoDeadline();
    // Earliest pending wheel fire for this fd (NoDeadline = none): the
    // wheel is re-entered only when a deadline moves EARLIER than this,
    // so steady-state re-arms never touch the wheel.
    SocketDeadline wheel_deadline = NoDeadline();
  };

  struct Worker {
    explicit Worker(SocketDeadline now) : wheel(now) {}

    ScopedFd epoll_fd;
    ScopedFd event_fd;
    std::thread thread;
    // Handoff from the accept thread; everything else in the struct is
    // touched only by the owning worker thread.
    std::mutex inbox_mutex;
    std::vector<int> inbox;
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    TimerWheel wheel;
  };

  static void WakeWorker(Worker* w) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t r =
        ::write(w->event_fd.get(), &one, sizeof(one));
  }

  void AcceptLoop() {
    size_t next_worker = 0;
    while (running_.load(std::memory_order_acquire)) {
      // Poll with a timeout instead of blocking in accept(): Stop() can
      // then flip running_ and join without ever closing the fd under
      // this thread's feet.
      pollfd pfd{};
      pfd.fd = listen_fd_.get();
      pfd.events = POLLIN;
      const int polled = ::poll(&pfd, 1, /*timeout_ms=*/250);
      if (!running_.load(std::memory_order_acquire)) break;
      if (polled <= 0) continue;  // timeout or EINTR: re-check and wait
      const int conn = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (conn < 0) {
        // Only a dead listener ends the loop. Transient failures --
        // EMFILE/ENFILE under fd pressure, ENOBUFS/ENOMEM, an aborted
        // handshake -- must not leave a long-running daemon silently
        // unable to accept forever. The listener stays readable while
        // the backlog holds connections we cannot take, so poll returns
        // immediately and a bare retry would hot-spin at 100% CPU:
        // back off before the next attempt.
        if (errno == EBADF || errno == EINVAL) break;
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        SleepWhileRunning(config_.accept_backoff_ms);
        continue;
      }
      SetNoDelay(conn);
      if (!SetNonBlocking(conn)) {
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        ::close(conn);
        continue;
      }
      bool shed = draining_.load(std::memory_order_acquire);
      if (!shed && config_.max_connections > 0) {
        shed = live_connections_.load(std::memory_order_acquire) >=
               config_.max_connections;
      }
      if (shed) {
        // At capacity (or draining): one typed rejection, then close.
        // Status != kOk responses parse regardless of the request opcode
        // the client had in flight, so this unsolicited frame is always
        // intelligible. The send is deadline-bounded -- a shedding
        // server must not be stallable by the peer it is shedding.
        shed_connections_.fetch_add(1, std::memory_order_relaxed);
        ScopedFd rejected(conn);
        Response response;
        response.status = Status::kOverloaded;
        response.error = "server at connection capacity; retry with backoff";
        std::vector<uint8_t> out;
        AppendResponseFrame(Opcode::kPing, response, &out);
        SendAllDeadline(rejected.get(), out.data(), out.size(),
                        DeadlineAfterMs(1000));
        continue;
      }
      connections_.fetch_add(1, std::memory_order_relaxed);
      live_connections_.fetch_add(1, std::memory_order_acq_rel);
      Worker* w = workers_[next_worker++ % workers_.size()].get();
      {
        std::lock_guard<std::mutex> lock(w->inbox_mutex);
        w->inbox.push_back(conn);
      }
      WakeWorker(w);
    }
  }

  // Sleeps in small slices so Stop() is never delayed by a backoff.
  void SleepWhileRunning(uint64_t ms) {
    const SocketDeadline until = DeadlineAfterMs(ms);
    while (running_.load(std::memory_order_acquire) &&
           SocketClock::now() < until) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min<uint64_t>(ms, 10)));
    }
  }

  void WorkerLoop(Worker* w) {
    std::vector<uint8_t> payload;  // frame scratch, reused across conns
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    while (running_.load(std::memory_order_acquire)) {
      int timeout_ms =
          w->wheel.empty() ? 250 : static_cast<int>(TimerWheel::kTickMs);
      if (draining_.load(std::memory_order_acquire)) timeout_ms = 10;
      const int n =
          ::epoll_wait(w->epoll_fd.get(), events, kMaxEvents, timeout_ms);
      if (!running_.load(std::memory_order_acquire)) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      bool adopt = false;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == w->event_fd.get()) {
          adopt = true;
          continue;
        }
        auto it = w->conns.find(fd);
        if (it == w->conns.end()) continue;  // closed earlier this batch
        Conn* c = it->second.get();
        bool alive = true;
        if (events[i].events & EPOLLOUT) {
          alive = FlushOutbound(w, c);
          if (alive && c->paused_read && c->OutboundBytes() == 0) {
            // The queue drained: resume the reads backpressure paused.
            // Explicit, because edge-triggered EPOLLIN will not re-fire
            // for bytes that were already waiting while we were paused.
            alive = PumpConn(w, c, &payload);
          }
        }
        if (alive && (events[i].events &
                      (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR))) {
          alive = PumpConn(w, c, &payload);
        }
        if (!alive) CloseConn(w, fd);
      }
      // Adoption AFTER the event batch: a freshly accepted fd may reuse
      // the number of one closed above, and a stale event for the dead
      // connection must never be applied to its successor.
      if (adopt) AdoptConnections(w, &payload);
      w->wheel.Advance(SocketClock::now(),
                       [this, w](int fd) { OnTimer(w, fd); });
      if (draining_.load(std::memory_order_acquire)) DrainSweep(w, &payload);
    }
    // Hard stop: every connection dies with its worker. Count buffered
    // partials (clients cut off mid-send) on the way out.
    {
      std::lock_guard<std::mutex> lock(w->inbox_mutex);
      for (int fd : w->inbox) {
        ::close(fd);
        live_connections_.fetch_sub(1, std::memory_order_acq_rel);
      }
      w->inbox.clear();
    }
    for (const auto& [fd, c] : w->conns) {
      (void)fd;
      if (c->decoder.buffered() > 0) {
        aborted_partial_frames_.fetch_add(1, std::memory_order_relaxed);
      }
      live_connections_.fetch_sub(1, std::memory_order_acq_rel);
    }
    w->conns.clear();
  }

  void AdoptConnections(Worker* w, std::vector<uint8_t>* payload) {
    uint64_t wakeups = 0;
    [[maybe_unused]] const ssize_t r =
        ::read(w->event_fd.get(), &wakeups, sizeof(wakeups));
    std::vector<int> fresh;
    {
      std::lock_guard<std::mutex> lock(w->inbox_mutex);
      fresh.swap(w->inbox);
    }
    for (int raw : fresh) {
      auto conn = std::make_unique<Conn>(raw, config_.max_frame_payload);
      Conn* c = conn.get();
      c->idle_deadline = DeadlineAfterMs(config_.idle_timeout_ms);
      w->conns.emplace(raw, std::move(conn));
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
      ev.data.fd = raw;
      if (::epoll_ctl(w->epoll_fd.get(), EPOLL_CTL_ADD, raw, &ev) != 0) {
        CloseConn(w, raw);
        continue;
      }
      // Bytes may have landed before the fd joined the epoll set; that
      // edge is already gone, so pump once by hand.
      if (!PumpConn(w, c, payload)) CloseConn(w, raw);
    }
  }

  // Drives one connection's read -> decode -> dispatch -> flush cycle
  // until the socket runs dry (edge-triggered epoll requires reading to
  // EAGAIN). Returns false when the connection must close.
  bool PumpConn(Worker* w, Conn* c, std::vector<uint8_t>* payload) {
    uint8_t chunk[1 << 16];
    SocketDeadline budget = NoDeadline();
    bool stamped = false;
    while (!c->close_after_flush) {
      if (c->paused_read) {
        if (!FlushOutbound(w, c)) return false;
        if (c->OutboundBytes() > 0) break;  // EPOLLOUT resumes us later
        c->paused_read = false;
      }
      const ssize_t got =
          ::recv(c->fd.get(), chunk, sizeof(chunk), MSG_DONTWAIT);
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // dry
        if (c->decoder.buffered() > 0) {
          aborted_partial_frames_.fetch_add(1, std::memory_order_relaxed);
        }
        return false;
      }
      if (got == 0) {
        // Peer closed. A half-written frame left in the decoder (a
        // client killed mid-send, a torn TCP stream) is a clean
        // disconnect, never an error path: the bytes are simply
        // discarded with the connection. Counted so tests and operators
        // can observe aborted uploads.
        if (c->decoder.buffered() > 0) {
          aborted_partial_frames_.fetch_add(1, std::memory_order_relaxed);
        }
        return false;
      }
      if (!stamped) {
        // The request budget is stamped at BATCH ARRIVAL: every frame
        // decoded from this delivery shares the stamp, so pipelined
        // frames queued behind a slow one inherit the time they spent
        // waiting.
        budget = DeadlineAfterMs(config_.request_budget_ms);
        stamped = true;
      }
      c->idle_deadline = DeadlineAfterMs(config_.idle_timeout_ms);
      c->decoder.Feed(chunk, static_cast<size_t>(got));
      while (true) {
        try {
          if (!c->decoder.Next(payload)) break;
        } catch (const std::exception& e) {
          // Corrupt length prefix: answer once, then drop the stream
          // as soon as the error frame flushes.
          Response bad;
          bad.status = Status::kBadRequest;
          bad.error = e.what();
          AppendResponseFrame(Opcode::kPing, bad, &c->staging);
          c->close_after_flush = true;
          break;
        }
        HandleFrame(*payload, budget, &c->staging);
        frames_.fetch_add(1, std::memory_order_relaxed);
      }
      if (config_.max_outbound_bytes > 0 &&
          c->OutboundBytes() > config_.max_outbound_bytes) {
        c->paused_read = true;  // backpressure; flushed at loop top
      }
    }
    if (!FlushOutbound(w, c)) return false;
    if (draining_.load(std::memory_order_acquire) && !c->close_after_flush &&
        c->OutboundBytes() == 0) {
      // Drain: every complete frame this connection sent has been
      // answered and flushed; anything still buffered is a partial the
      // peer may never finish. Close now.
      if (c->decoder.buffered() > 0) {
        aborted_partial_frames_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    ScheduleTimers(w, c);
    return true;
  }

  // Flushes the double buffer with gather-writes until done or EAGAIN
  // (which arms EPOLLOUT and the write-stall deadline). Returns false
  // when the connection must close: peer gone, or a desynced stream
  // whose final error frame has now fully flushed.
  bool FlushOutbound(Worker* w, Conn* c) {
    while (c->OutboundBytes() > 0) {
      iovec iov[2];
      size_t iovcnt = 0;
      if (c->pending.size() > c->pending_off) {
        iov[iovcnt].iov_base = c->pending.data() + c->pending_off;
        iov[iovcnt].iov_len = c->pending.size() - c->pending_off;
        ++iovcnt;
      }
      if (!c->staging.empty()) {
        iov[iovcnt].iov_base = c->staging.data();
        iov[iovcnt].iov_len = c->staging.size();
        ++iovcnt;
      }
      const ssize_t sent = WritevNonBlocking(c->fd.get(), iov, iovcnt);
      if (sent < 0) return false;
      if (sent == 0) {
        // Socket buffer full: wait for EPOLLOUT, bounded by the
        // write-stall deadline.
        if (!c->want_write) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET;
          ev.data.fd = c->fd.get();
          if (::epoll_ctl(w->epoll_fd.get(), EPOLL_CTL_MOD, c->fd.get(),
                          &ev) != 0) {
            return false;
          }
          c->want_write = true;
        }
        if (c->write_deadline == NoDeadline()) {
          c->write_deadline = DeadlineAfterMs(config_.send_timeout_ms);
        }
        ScheduleTimers(w, c);
        return true;
      }
      ConsumeOutbound(c, static_cast<size_t>(sent));
      if (c->write_deadline != NoDeadline()) {
        // Progress re-arms the stall clock: only a peer taking NOTHING
        // for send_timeout_ms is reaped.
        c->write_deadline = DeadlineAfterMs(config_.send_timeout_ms);
      }
    }
    c->write_deadline = NoDeadline();
    if (c->want_write) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
      ev.data.fd = c->fd.get();
      ::epoll_ctl(w->epoll_fd.get(), EPOLL_CTL_MOD, c->fd.get(), &ev);
      c->want_write = false;
    }
    return !c->close_after_flush;
  }

  // Accounts `n` sent bytes against pending-then-staging; when the
  // pending run drains, the buffers swap so the drained allocation is
  // recycled as the next staging buffer.
  static void ConsumeOutbound(Conn* c, size_t n) {
    const size_t pending_left = c->pending.size() - c->pending_off;
    if (n < pending_left) {
      c->pending_off += n;
      return;
    }
    n -= pending_left;
    c->pending.clear();
    std::swap(c->pending, c->staging);
    c->pending_off = n;
    if (c->pending_off >= c->pending.size()) {
      c->pending.clear();
      c->pending_off = 0;
    }
  }

  // Ensures a wheel entry fires at-or-before the connection's earliest
  // real deadline. Lazy cancellation makes re-arming free: moving a
  // deadline LATER leaves the old entry to fire, re-check, and
  // reschedule itself.
  void ScheduleTimers(Worker* w, Conn* c) {
    const SocketDeadline earliest =
        std::min(c->idle_deadline, c->write_deadline);
    if (earliest == NoDeadline()) return;
    if (c->wheel_deadline <= earliest) return;
    c->wheel_deadline = w->wheel.Schedule(c->fd.get(), earliest);
  }

  void OnTimer(Worker* w, int fd) {
    auto it = w->conns.find(fd);
    if (it == w->conns.end()) return;  // lazily cancelled
    Conn* c = it->second.get();
    c->wheel_deadline = NoDeadline();
    const SocketDeadline now = SocketClock::now();
    if (now >= c->idle_deadline) {
      // Slow loris / dead peer: reap. A buffered partial frame is the
      // signature of a client that sent a length prefix and stalled.
      idle_reaped_.fetch_add(1, std::memory_order_relaxed);
      if (c->decoder.buffered() > 0) {
        aborted_partial_frames_.fetch_add(1, std::memory_order_relaxed);
      }
      CloseConn(w, fd);
      return;
    }
    if (now >= c->write_deadline) {
      // Write stalled past send_timeout_ms: the peer stopped taking
      // response bytes entirely (blackholed downstream).
      CloseConn(w, fd);
      return;
    }
    ScheduleTimers(w, c);
  }

  // Drain phase: pump every connection (answering whatever complete
  // frames it holds) and close the ones with nothing left in flight.
  void DrainSweep(Worker* w, std::vector<uint8_t>* payload) {
    std::vector<int> victims;
    for (auto& [fd, c] : w->conns) {
      if (!PumpConn(w, c.get(), payload)) victims.push_back(fd);
    }
    for (int fd : victims) CloseConn(w, fd);
  }

  void CloseConn(Worker* w, int fd) {
    auto it = w->conns.find(fd);
    if (it == w->conns.end()) return;
    // Closing the fd (ScopedFd in the erased Conn) drops its epoll
    // registration; wheel entries cancel lazily in OnTimer.
    w->conns.erase(it);
    live_connections_.fetch_sub(1, std::memory_order_acq_rel);
  }

  // Ops whose response carries no state the client reconciles against:
  // safe to convert to kDeadlineExceeded after the work ran. kAppend and
  // kFlush return the accepted count and kCreate/kDrop change registry
  // state -- once applied they MUST ack, or the client's accounting and
  // retry logic desync from the server's.
  static bool IsReadOnly(Opcode op) {
    switch (op) {
      case Opcode::kPing:
      case Opcode::kRank:
      case Opcode::kQuantiles:
      case Opcode::kCdf:
      case Opcode::kSnapshot:
      case Opcode::kList:
      case Opcode::kStats:
        return true;
      default:
        return false;
    }
  }

  // Parses one request payload and appends the framed response to
  // `*out` (the connection's staging buffer). All throwing paths are
  // caught here; see the class comment for the status mapping.
  void HandleFrame(const std::vector<uint8_t>& payload, SocketDeadline budget,
                   std::vector<uint8_t>* out) {
    Opcode op = Opcode::kPing;
    Response response;
    try {
      const Request request = ParseRequest(payload);
      op = request.op;
      if (SocketClock::now() >= budget) {
        // Budget spent before dispatch (a burst pipelined behind a slow
        // frame, or a server pushed past its request budget): shed the
        // frame with zero work done. Uniform for every opcode -- nothing
        // was applied, so the client may retry anything.
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        response.status = Status::kDeadlineExceeded;
        response.error = "request budget exhausted before dispatch";
        AppendResponseFrame(op, response, out);
        return;
      }
      // An operation can race an idle eviction: the engine handle goes
      // retired between Require and use. Re-dispatching re-resolves the
      // metric, which rehydrates it -- invisible to the client beyond
      // latency. Bounded so a pathological evict loop cannot spin here.
      for (int attempt = 0;; ++attempt) {
        try {
          response = Dispatch(request);
          break;
        } catch (const MetricRetired&) {
          if (attempt >= 2) throw;
        }
      }
      if (IsReadOnly(op) && SocketClock::now() >= budget) {
        // The answer took longer than the budget; for a read the client
        // has surely timed out its side, so a typed timeout beats a
        // stale payload. Mutations skip this: applied work always acks.
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        Response late;
        late.status = Status::kDeadlineExceeded;
        late.error = "request budget exhausted during dispatch";
        AppendResponseFrame(op, late, out);
        return;
      }
    } catch (const MetricNotFound& e) {
      response.status = Status::kNotFound;
      response.error = e.what();
    } catch (const MetricExists& e) {
      response.status = Status::kExists;
      response.error = e.what();
    } catch (const QuotaExceeded& e) {
      // Before the runtime_error ladder: a quota rejection is a
      // definitive, typed answer, not a malformed request.
      response.status = Status::kQuotaExceeded;
      response.error = e.what();
    } catch (const MetricRetired& e) {
      // Retries exhausted (an evictor is racing this metric hard):
      // server-side condition, safe for the client to retry.
      response.status = Status::kError;
      response.error = e.what();
    } catch (const persist::IoError& e) {
      // Durability failures (fsync error, injected fault, disk full) are
      // server-side trouble, not a malformed request: kError, and the
      // ordering matters -- IoError derives from runtime_error, which
      // maps to kBadRequest below.
      response.status = Status::kError;
      response.error = e.what();
    } catch (const std::invalid_argument& e) {
      response.status = Status::kBadRequest;
      response.error = e.what();
    } catch (const std::logic_error& e) {
      response.status = Status::kBadRequest;
      response.error = e.what();
    } catch (const std::runtime_error& e) {
      response.status = Status::kBadRequest;
      response.error = e.what();
    } catch (const std::exception& e) {
      response.status = Status::kError;
      response.error = e.what();
    }
    AppendResponseFrame(op, response, out);
  }

  Response Dispatch(const Request& request) {
    Response response;
    switch (request.op) {
      case Opcode::kPing:
        response.protocol_version = kProtocolVersion;
        break;
      case Opcode::kCreate:
        registry_->Create(request.metric, request.spec);
        break;
      case Opcode::kAppend: {
        SketchRegistry::EnginePtr engine =
            registry_->Require(request.metric);
        engine->Append(request.values.data(), request.values.size());
        response.n = engine->AcceptedN();
        // Checkpoint on the append path, after the ack state is set: the
        // engine decides (by WAL bytes written) whether a snapshot is
        // due, so recovery replay stays short without a background timer.
        engine->MaybeCheckpoint();
        break;
      }
      case Opcode::kFlush: {
        SketchRegistry::EnginePtr engine =
            registry_->Require(request.metric);
        engine->Flush();
        response.n = engine->AcceptedN();
        break;
      }
      case Opcode::kRank:
        response.ranks = registry_->Require(request.metric)
                             ->GetRanks(request.values, request.criterion);
        break;
      case Opcode::kQuantiles:
        response.values =
            registry_->Require(request.metric)
                ->GetQuantiles(request.values, request.criterion);
        break;
      case Opcode::kCdf:
        response.values = registry_->Require(request.metric)
                              ->GetCDF(request.values, request.criterion);
        break;
      case Opcode::kSnapshot:
        response.blob = registry_->Require(request.metric)->Snapshot();
        break;
      case Opcode::kList: {
        if (request.list_paged) {
          // v2 paged form: prefix filter + offset/limit, served from the
          // lazily merged per-shard name runs.
          response.list_paged = true;
          response.names =
              registry_->ListPage(request.list_prefix, request.list_offset,
                                  request.list_limit, &response.total);
        } else {
          std::shared_ptr<const std::vector<std::string>> names =
              registry_->List();
          response.names = *names;
        }
        break;
      }
      case Opcode::kDrop:
        if (!registry_->Drop(request.metric)) {
          throw MetricNotFound(request.metric);
        }
        break;
      case Opcode::kStats:
        // Counter names are part of the observable surface (req-cli
        // prints them, the chaos suite asserts on them); additions are
        // fine, renames are a protocol change.
        response.stats = {
            {"connections_accepted", connections_.load()},
            {"live_connections", live_connections_.load()},
            {"frames_served", frames_.load()},
            {"aborted_partial_frames", aborted_partial_frames_.load()},
            {"shed_connections", shed_connections_.load()},
            {"deadline_exceeded", deadline_exceeded_.load()},
            {"idle_reaped", idle_reaped_.load()},
            {"accept_failures", accept_failures_.load()},
            {"workers", static_cast<uint64_t>(workers_.size())},
            {"metrics", registry_->size()},
            {"draining",
             draining_.load(std::memory_order_acquire) ? 1u : 0u},
        };
        break;
    }
    return response;
  }

  SketchRegistry* registry_;
  ReqdServerConfig config_;
  ScopedFd listen_fd_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> live_connections_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> aborted_partial_frames_{0};
  std::atomic<uint64_t> shed_connections_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> idle_reaped_{0};
  std::atomic<uint64_t> accept_failures_{0};
};

}  // namespace service
}  // namespace req

#endif  // REQSKETCH_SERVICE_REQD_SERVER_H_
