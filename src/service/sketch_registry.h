// SketchRegistry: the multi-tenant heart of the quantile service. Maps
// metric names to per-metric engines, each wrapping one of the repo's
// quantile primitives -- chosen once, at CREATE time:
//
//   kPlain    -> ReqSketch<double>: one deterministic sketch. Snapshots
//                serialize byte-identically to an in-process ReqSketch fed
//                the same stream with the same config (the loopback e2e
//                test holds this bit-exactly).
//   kSharded  -> ShardedReqSketch<double>: multi-shard ingest with
//                merge-on-query, for metrics hot enough that one
//                compaction cascade would bottleneck.
//   kWindowed -> WindowedReqSketch<double>: count-driven sliding window
//                (bucket_items per bucket, num_buckets buckets).
//
// Ingest path (all kinds): APPEND batches are staged through an SPSC
// buffer (concurrency/spsc_buffer.h) and drained into the underlying
// sketch in batches, so the per-item cost stays on the batch fast path and
// appends never hold the sketch lock for more than one drain. The staging
// producer role is serialized by a per-engine append mutex (many
// connections may append to one metric; they take turns as the SPSC
// producer), the consumer role by the engine state mutex.
//
// Query path (plain/windowed): queries first drain staged items (so every
// APPEND acknowledged before the query is visible), then run against an
// epoch-tagged snapshot -- a standalone ReqSketch copy with its sorted
// view prewarmed, cached in a concurrency::EpochSnapshotCache and rebuilt
// only after a drain actually changed the state. While a metric is not
// being appended to, any number of connections query it lock-free. The
// sharded engine delegates to ShardedReqSketch's own epoch-cached merged
// view, which implements the same pattern internally.
//
// Tenancy spine (the million-metric refactor): the name->engine map is
// sharded by name hash into kRegistryShards independent mutex+map shards,
// each with its own epoch and its own sorted-name snapshot cache. A
// CREATE/DROP invalidates only its shard's listing; the global LIST is a
// lazy k-way concatenation of the per-shard caches, and the paged
// ListPage(prefix, offset, limit) form never materializes more than one
// page. Lifecycle: EvictIdle() checkpoints and closes the WAL of metrics
// idle past a TTL (their engines are dropped from memory and rebuilt
// bit-identically from the checkpoint on the next touch -- an acked item
// is never lost), or trims allocator slack when running memory-only.
// Metric-count and memory quotas (SetLimits) reject CREATEs with the
// typed QuotaExceeded below, which the server maps to kQuotaExceeded.
//
// Error model: engines and registry throw the repo's standard exception
// taxonomy (invalid_argument for bad arguments, logic_error for queries on
// empty state, runtime_error for corrupt data) plus the typed
// MetricNotFound / MetricExists / QuotaExceeded below, which the server
// maps to wire statuses. MetricRetired is internal backpressure: an append
// raced an eviction and the server transparently retries against the
// rehydrated engine.
#ifndef REQSKETCH_SERVICE_SKETCH_REGISTRY_H_
#define REQSKETCH_SERVICE_SKETCH_REGISTRY_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "concurrency/epoch_snapshot.h"
#include "concurrency/sharded_req_sketch.h"
#include "concurrency/spsc_buffer.h"
#include "core/req_serde.h"
#include "core/req_sketch.h"
#include "persist/metric_log.h"
#include "service/wire_protocol.h"
#include "util/validation.h"
#include "window/windowed_req_sketch.h"

namespace req {
namespace service {

struct MetricNotFound : std::invalid_argument {
  explicit MetricNotFound(const std::string& name)
      : std::invalid_argument("metric not found: " + name) {}
};

struct MetricExists : std::invalid_argument {
  explicit MetricExists(const std::string& name)
      : std::invalid_argument("metric already exists: " + name) {}
};

// CREATE rejected by a registry quota (metric count or accounted memory).
// The server maps this to Status::kQuotaExceeded; clients must treat it as
// a definitive answer, never a transport failure to retry.
struct QuotaExceeded : std::runtime_error {
  explicit QuotaExceeded(const std::string& what) : std::runtime_error(what) {}
};

// An append raced an idle eviction: the engine handle was retired after
// the caller resolved it. Internal backpressure, never surfaced on the
// wire -- the server re-resolves the metric (rehydrating it) and retries.
struct MetricRetired : std::runtime_error {
  MetricRetired()
      : std::runtime_error("metric engine retired by eviction; re-resolve") {}
};

// Validates a CREATE spec before any engine is built, so a bad request
// fails with a precise message instead of surfacing from a constructor
// deep in the stack.
inline void ValidateMetricSpec(const MetricSpec& spec) {
  params::ValidateConfig(spec.base);
  util::CheckArg(spec.base.n_hint <= params::kMaxN,
                 "n_hint must not exceed 2^62");
  util::CheckArg(spec.buffer_capacity >= 1 &&
                     spec.buffer_capacity <= (uint64_t{1} << 32),
                 "buffer_capacity must be in [1, 2^32]");
  if (spec.kind == EngineKind::kSharded) {
    util::CheckArg(spec.num_shards >= 1 && spec.num_shards <= 4096,
                   "num_shards must be in [1, 4096]");
  }
  if (spec.kind == EngineKind::kWindowed) {
    util::CheckArg(spec.num_buckets >= 2 &&
                       spec.num_buckets <= (uint32_t{1} << 16),
                   "num_buckets must be in [2, 2^16]");
    // The wire protocol has no Rotate() injection, so service-managed
    // windows must be count-driven.
    util::CheckArg(spec.bucket_items >= 1,
                   "bucket_items must be >= 1 for service windows");
    util::CheckArg(
        spec.bucket_items <= params::kMaxN / spec.num_buckets,
        "num_buckets * bucket_items must not exceed 2^62");
  }
}

// One metric's engine. Thread safety: Append may be called from any number
// of connections concurrently (serialized internally); queries and
// Snapshot may run concurrently with appends and each other.
//
// Durability: when a WAL is attached (SetLog, done by the registry's
// durability hook or the recovery path), every Append logs its batch
// BEFORE staging it, under the same append mutex -- so the WAL's batch
// order IS the engine's apply order, and the engine's state at WAL
// position L is exactly "the first L batches applied". Snapshot() and the
// checkpoint hooks quiesce the append path to pin that correspondence.
class MetricEngine {
 public:
  virtual ~MetricEngine() = default;

  virtual EngineKind kind() const = 0;
  virtual const MetricSpec& spec() const = 0;

  // Total items accepted since CREATE (acknowledged appends; for windowed
  // metrics this is lifetime-accepted, not in-window).
  uint64_t AcceptedN() const {
    return accepted_n_.load(std::memory_order_acquire);
  }

  // Stages `count` items; rejects NaN up front (strong guarantee: nothing
  // is applied on throw -- including a WAL write failure, which surfaces
  // as persist::IoError before any state change).
  virtual void Append(const double* data, size_t count) = 0;

  // Makes every staged item query-visible.
  virtual void Flush() = 0;

  // Resident heap bytes this engine holds (sketch payload, staging,
  // snapshot caches, allocator slack). The registry's quota accounting
  // charges this figure per metric; it is a measurement, not a contract,
  // and may be briefly stale against concurrent appends.
  virtual size_t MemoryFootprint() const = 0;

  // Releases allocator slack (snapshot caches, scratch, arena slack)
  // without changing any answer. The memory-only idle path; durable idle
  // metrics get evicted outright via RetireForEviction instead.
  virtual void TrimMemory() {}

  // True once RetireForEviction succeeded: the engine took its final
  // checkpoint and closed its WAL. Queries still serve the final state;
  // appends throw MetricRetired so the caller re-resolves the metric.
  bool Retired() const { return retired_.load(std::memory_order_acquire); }

  // Eviction: quiesce appends, checkpoint at the exact WAL position, then
  // poison the append path and release the WAL handle. Strong guarantee --
  // a checkpoint failure throws with the engine still live and appendable.
  // Requires an attached WAL (memory-only metrics are trimmed, not
  // evicted).
  void RetireForEviction() {
    std::lock_guard<std::mutex> produce(append_mutex_);
    util::CheckState(log_ != nullptr, "RetireForEviction requires a WAL");
    const uint64_t lsn = log_->next_lsn();
    const std::vector<uint8_t> blob = SnapshotLocked();
    log_->WriteCheckpoint(lsn, AcceptedN(), blob);
    // Nothing can append between the checkpoint and the flag: both sit
    // under the append mutex. From here the engine is a read-only relic.
    retired_.store(true, std::memory_order_release);
    log_.reset();
  }

  // Order-based queries. Observe every append acknowledged before the
  // call (each query drains staging first).
  virtual std::vector<uint64_t> GetRanks(const std::vector<double>& ys,
                                         Criterion criterion) = 0;
  virtual std::vector<double> GetQuantiles(const std::vector<double>& qs,
                                           Criterion criterion) = 0;
  virtual std::vector<double> GetCDF(const std::vector<double>& splits,
                                     Criterion criterion) = 0;

  // Serialized engine state: u8 engine kind | engine-specific serde bytes
  // (ReqSerde / sharded serde / windowed serde). Quiesces the append path
  // so the blob sits on a WAL batch boundary.
  std::vector<uint8_t> Snapshot() {
    std::lock_guard<std::mutex> produce(append_mutex_);
    return SnapshotLocked();
  }

  // Attaches the metric's WAL. Called before the engine is published
  // (CREATE) or after replay completes (recovery) -- never while other
  // threads are appending.
  void SetLog(std::shared_ptr<persist::MetricLog> log) {
    log_ = std::move(log);
  }
  persist::MetricLog* wal() const { return log_.get(); }

  // Checkpoint when the WAL has grown past its threshold; the server
  // calls this after APPEND acks. No-op without a WAL.
  void MaybeCheckpoint() {
    if (log_ && log_->ShouldCheckpoint()) ForceCheckpoint();
  }

  // Unconditional checkpoint (shutdown, tests). Takes the append mutex,
  // so the snapshot LSN is exact: state == first next_lsn() batches.
  void ForceCheckpoint() {
    if (!log_) return;
    std::lock_guard<std::mutex> produce(append_mutex_);
    const uint64_t lsn = log_->next_lsn();
    const std::vector<uint8_t> blob = SnapshotLocked();
    log_->WriteCheckpoint(lsn, AcceptedN(), blob);
  }

 protected:
  // Snapshot with append_mutex_ held by the caller.
  virtual std::vector<uint8_t> SnapshotLocked() = 0;

  // Every Append implementation calls this under append_mutex_, so no
  // batch can slip past a completed retirement (its WAL segment is
  // closed; an append landing there would be lost on rehydrate).
  void CheckNotRetired() const {
    if (retired_.load(std::memory_order_relaxed)) throw MetricRetired();
  }

  // Serializes the producer role (SPSC producer / shard rotation) across
  // appending connections, and pins the WAL-position <-> engine-state
  // correspondence for snapshots and checkpoints.
  std::mutex append_mutex_;
  std::atomic<uint64_t> accepted_n_{0};
  std::atomic<bool> retired_{false};
  std::shared_ptr<persist::MetricLog> log_;
};

// Splits a snapshot blob into its kind tag and serde payload; throws
// runtime_error on an empty or unknown-kind blob.
inline EngineKind SnapshotBlobKind(const std::vector<uint8_t>& blob) {
  util::CheckData(!blob.empty(), "empty snapshot blob");
  util::CheckData(blob[0] <= static_cast<uint8_t>(EngineKind::kWindowed),
                  "unknown snapshot engine kind");
  return static_cast<EngineKind>(blob[0]);
}

inline std::vector<uint8_t> SnapshotBlobPayload(
    const std::vector<uint8_t>& blob) {
  SnapshotBlobKind(blob);  // validates
  return std::vector<uint8_t>(blob.begin() + 1, blob.end());
}

namespace detail {

inline void CheckAppendable(const double* data, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    util::CheckArg(!std::isnan(data[i]), "cannot append NaN");
  }
}

}  // namespace detail

// --- staged engines (plain / windowed) -------------------------------------

// Shared machinery for the engines that stage appends through one SPSC
// buffer into a single underlying structure and serve queries from an
// epoch-cached ReqSketch snapshot. Derived classes choose the underlying
// type and how to snapshot it; the staging/epoch protocol lives here
// exactly once.
//
// Lazy staging: the SPSC buffer does not exist until a second connection
// is actually observed appending (a try-lock miss on the append mutex).
// Until then appends take the direct batch path -- one state-lock'd
// Update(data, count) -- with zero staging allocation, which is what
// makes a million single-writer metrics affordable. The two paths build
// bit-identical sketches: the batch Update is documented to chunk
// invariantly, so where the drain boundaries fall cannot change the
// result.
template <typename Underlying>
class StagedEngineBase : public MetricEngine {
 public:
  using Sketch = ReqSketch<double>;

  const MetricSpec& spec() const override { return spec_; }

  void Append(const double* data, size_t count) override {
    detail::CheckAppendable(data, count);
    // A try-lock miss is the one observable signature of a concurrent
    // writer; record it, then queue normally. The flag is sticky -- once
    // contended, the metric keeps its staging buffer for life.
    std::unique_lock<std::mutex> produce(append_mutex_, std::try_to_lock);
    if (!produce.owns_lock()) {
      contended_.store(true, std::memory_order_relaxed);
      produce.lock();
    }
    CheckNotRetired();
    // WAL before staging: if the log write fails (persist::IoError),
    // nothing was applied and nothing gets acknowledged. The reverse
    // order could acknowledge a batch that never reached the log.
    if (log_) log_->AppendBatch(data, count);
    if (!staging_ && contended_.load(std::memory_order_relaxed)) {
      // Materialize under BOTH locks: Drain reads the pointer under the
      // state mutex, this appender owns the append mutex.
      std::lock_guard<std::mutex> lock(state_mutex_);
      staging_ = std::make_unique<concurrency::SpscBuffer<double>>(
          spec_.buffer_capacity);
    }
    if (!staging_) {
      // Single-writer direct path: apply the batch in place. Same result
      // as staging + draining, without touching a buffer.
      std::lock_guard<std::mutex> lock(state_mutex_);
      underlying_.Update(data, count);
      epoch_.fetch_add(1, std::memory_order_release);
    } else {
      size_t left = count;
      while (left > 0) {
        const size_t pushed = staging_->TryPushBulk(data, left);
        data += pushed;
        left -= pushed;
        if (left > 0) Drain();
      }
    }
    accepted_n_.fetch_add(count, std::memory_order_release);
  }

  void Flush() override { Drain(); }

  // Whether the staging buffer has been materialized (tests and
  // footprint diagnostics: a serial metric must never pay for one).
  bool StagingMaterialized() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return staging_ != nullptr;
  }

  size_t MemoryFootprint() const override {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // underlying_ is embedded, so its MemoryBytes() (which counts
    // sizeof(Sketch)) must replace -- not add to -- its share of
    // sizeof(*this).
    size_t bytes = sizeof(*this) - sizeof(Sketch) +
                   underlying_.MemoryBytes() +
                   drain_scratch_.capacity() * sizeof(double);
    if (staging_) {
      bytes += sizeof(concurrency::SpscBuffer<double>) +
               staging_->capacity() * sizeof(double);
    }
    if (std::shared_ptr<const Sketch> snap = cache_.Peek()) {
      bytes += snap->MemoryBytes();
    }
    return bytes;
  }

  // Memory-only idle path: drain, drop the snapshot cache, release
  // scratch and arena slack. Answers are unchanged; the next query
  // rebuilds its snapshot.
  void TrimMemory() override {
    std::lock_guard<std::mutex> produce(append_mutex_);
    Drain();
    std::lock_guard<std::mutex> lock(state_mutex_);
    underlying_.TrimMemory();
    drain_scratch_.clear();
    drain_scratch_.shrink_to_fit();
    cache_.Invalidate();
  }

  std::vector<uint64_t> GetRanks(const std::vector<double>& ys,
                                 Criterion criterion) override {
    return View()->GetRanks(ys, criterion);
  }
  std::vector<double> GetQuantiles(const std::vector<double>& qs,
                                   Criterion criterion) override {
    return View()->GetQuantiles(qs, criterion);
  }
  std::vector<double> GetCDF(const std::vector<double>& splits,
                             Criterion criterion) override {
    return View()->GetCDF(splits, criterion);
  }

 protected:
  // accepted_n != 0 only on the recovery path, restoring the checkpoint's
  // acknowledged-item count before WAL replay re-appends the tail.
  StagedEngineBase(const MetricSpec& spec, Underlying underlying,
                   uint64_t accepted_n = 0)
      : spec_(spec), underlying_(std::move(underlying)) {
    accepted_n_.store(accepted_n, std::memory_order_release);
  }

  // Builds the query snapshot from underlying_; called under
  // state_mutex_ (the sorted-view warm-up happens outside it).
  virtual Sketch MakeSnapshotLocked() = 0;

  void Drain() {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!staging_) return;  // direct-path appends are already applied
    drain_scratch_.clear();
    if (staging_->PopAll(&drain_scratch_) > 0) {
      underlying_.Update(drain_scratch_.data(), drain_scratch_.size());
      // Bump INSIDE the lock: a second query thread that serializes
      // behind this drain (pops nothing) must then read the bumped
      // epoch, or it could serve a cached snapshot missing items whose
      // append was acknowledged before that query began.
      epoch_.fetch_add(1, std::memory_order_release);
    }
  }

  std::shared_ptr<const Sketch> View() {
    Drain();
    return cache_.Get(
        [this] { return epoch_.load(std::memory_order_acquire); },
        [this] {
          std::unique_lock<std::mutex> lock(state_mutex_);
          Sketch snap = MakeSnapshotLocked();
          lock.unlock();
          // Warm the sorted view outside the state lock: queries on the
          // published snapshot then take only lock-free reads.
          snap.PrepareSortedView();
          return snap;
        });
  }

  const MetricSpec spec_;
  // Null until a concurrent writer is observed; see the class comment.
  std::unique_ptr<concurrency::SpscBuffer<double>> staging_;
  std::atomic<bool> contended_{false};
  // Guards underlying_, drain_scratch_, the staging pointer, and the
  // staging consumer role. (The SPSC producer role is serialized by the
  // base append_mutex_.)
  mutable std::mutex state_mutex_;
  Underlying underlying_;
  std::vector<double> drain_scratch_;
  std::atomic<uint64_t> epoch_{0};
  concurrency::EpochSnapshotCache<Sketch> cache_;
};

// --- plain -----------------------------------------------------------------

class PlainReqEngine final : public StagedEngineBase<ReqSketch<double>> {
 public:
  explicit PlainReqEngine(const MetricSpec& spec)
      : StagedEngineBase(spec, Sketch(spec.base)) {}

  // Recovery: adopts a checkpoint-restored sketch (ReqSerde v2 carries
  // the exact PRNG state, so continuation is bit-identical).
  PlainReqEngine(const MetricSpec& spec, Sketch&& restored,
                 uint64_t accepted_n)
      : StagedEngineBase(spec, std::move(restored), accepted_n) {}

  EngineKind kind() const override { return EngineKind::kPlain; }

 protected:
  std::vector<uint8_t> SnapshotLocked() override {
    // The cached snapshot is a faithful copy (config, seed, levels,
    // schedule state), so it serializes byte-identically to the live
    // sketch -- and to an in-process sketch fed the same stream.
    std::shared_ptr<const Sketch> view = View();
    std::vector<uint8_t> blob{static_cast<uint8_t>(EngineKind::kPlain)};
    const std::vector<uint8_t> bytes = SerializeSketch(*view);
    blob.insert(blob.end(), bytes.begin(), bytes.end());
    return blob;
  }

 private:
  Sketch MakeSnapshotLocked() override { return underlying_; }
};

// --- sharded ---------------------------------------------------------------

class ShardedReqEngine final : public MetricEngine {
 public:
  using Sharded = concurrency::ShardedReqSketch<double>;

  explicit ShardedReqEngine(const MetricSpec& spec)
      : spec_(spec), sharded_(MakeConfig(spec)) {}

  // Recovery: restores the serialized shard set and resumes the
  // round-robin rotation where batch number `batches` left it, so WAL
  // replay routes every batch to the same shard it originally hit.
  ShardedReqEngine(const MetricSpec& spec,
                   const std::vector<uint8_t>& payload, uint64_t accepted_n,
                   uint64_t batches)
      : spec_(spec),
        next_shard_(static_cast<size_t>(batches % spec.num_shards)),
        sharded_(Sharded::Deserialize(payload)) {
    util::CheckData(sharded_.num_shards() == spec.num_shards,
                    "sharded snapshot shard count differs from spec");
    accepted_n_.store(accepted_n, std::memory_order_release);
  }

  EngineKind kind() const override { return EngineKind::kSharded; }
  const MetricSpec& spec() const override { return spec_; }

  void Append(const double* data, size_t count) override {
    detail::CheckAppendable(data, count);
    std::lock_guard<std::mutex> produce(append_mutex_);
    CheckNotRetired();
    if (log_) log_->AppendBatch(data, count);
    // Whole batches rotate round-robin across shards: each shard's stream
    // (and therefore its sketch) is a pure function of the batch arrival
    // order, and the per-shard single-writer contract holds because the
    // append mutex serializes the producer role.
    sharded_.Update(next_shard_, data, count);
    next_shard_ = (next_shard_ + 1) % sharded_.num_shards();
    accepted_n_.fetch_add(count, std::memory_order_release);
  }

  // FlushAll is safe concurrently with producers (drains under the shard
  // locks), so queries need not take the append mutex.
  void Flush() override { sharded_.FlushAll(); }

  size_t MemoryFootprint() const override {
    return sizeof(*this) - sizeof(Sharded) + sharded_.MemoryBytes();
  }

  void TrimMemory() override {
    std::lock_guard<std::mutex> produce(append_mutex_);
    sharded_.FlushAll();
    sharded_.TrimMemory();
  }

  std::vector<uint64_t> GetRanks(const std::vector<double>& ys,
                                 Criterion criterion) override {
    Flush();
    return sharded_.GetRanks(ys, criterion);
  }
  std::vector<double> GetQuantiles(const std::vector<double>& qs,
                                   Criterion criterion) override {
    Flush();
    return sharded_.GetQuantiles(qs, criterion);
  }
  std::vector<double> GetCDF(const std::vector<double>& splits,
                             Criterion criterion) override {
    Flush();
    return sharded_.GetCDF(splits, criterion);
  }

 protected:
  std::vector<uint8_t> SnapshotLocked() override {
    // The caller (MetricEngine::Snapshot / ForceCheckpoint) holds the
    // append mutex, quiescing producers for the serialize: the sharded
    // serde requires empty staging buffers (buffered items would be
    // silently lost).
    sharded_.FlushAll();
    std::vector<uint8_t> blob{static_cast<uint8_t>(EngineKind::kSharded)};
    const std::vector<uint8_t> bytes = sharded_.Serialize();
    blob.insert(blob.end(), bytes.begin(), bytes.end());
    return blob;
  }

 private:
  static concurrency::ShardedReqConfig MakeConfig(const MetricSpec& spec) {
    concurrency::ShardedReqConfig config;
    config.num_shards = spec.num_shards;
    config.buffer_capacity = spec.buffer_capacity;
    config.base = spec.base;
    return config;
  }

  const MetricSpec spec_;
  size_t next_shard_ = 0;
  Sharded sharded_;
};

// --- windowed --------------------------------------------------------------

class WindowedReqEngine final
    : public StagedEngineBase<window::WindowedReqSketch<double>> {
 public:
  using Window = window::WindowedReqSketch<double>;

  explicit WindowedReqEngine(const MetricSpec& spec)
      : StagedEngineBase(spec, Window(MakeConfig(spec))) {}

  // Recovery: adopts a checkpoint-restored window (rotation is
  // count-driven, and each bucket's sketch carries its exact PRNG state,
  // so WAL replay rotates and compacts identically).
  WindowedReqEngine(const MetricSpec& spec, Window&& restored,
                    uint64_t accepted_n)
      : StagedEngineBase(spec, std::move(restored), accepted_n) {}

  EngineKind kind() const override { return EngineKind::kWindowed; }

 protected:
  std::vector<uint8_t> SnapshotLocked() override {
    // Serialize the window itself (ring, rotations, bucket epochs), not
    // its merged view: a restored snapshot keeps expiring correctly.
    // (Count-driven rotation happens inside the base drain's batch
    // update, at the same boundaries per-item feeding would produce.)
    Drain();
    std::lock_guard<std::mutex> lock(state_mutex_);
    std::vector<uint8_t> blob{static_cast<uint8_t>(EngineKind::kWindowed)};
    const std::vector<uint8_t> bytes = underlying_.Serialize();
    blob.insert(blob.end(), bytes.begin(), bytes.end());
    return blob;
  }

 private:
  static window::WindowedReqConfig MakeConfig(const MetricSpec& spec) {
    window::WindowedReqConfig config;
    config.num_buckets = spec.num_buckets;
    config.bucket_items = spec.bucket_items;
    config.base = spec.base;
    return config;
  }

  Sketch MakeSnapshotLocked() override {
    if (underlying_.is_empty()) {
      // Queries on the empty snapshot throw the standard empty-sketch
      // logic_error, matching the window's own checks.
      return Sketch(spec_.base);
    }
    return underlying_.MergedSnapshot();
  }
};

// --- the registry ----------------------------------------------------------

// What one EvictIdle sweep did: how many metrics it looked at, how many
// it checkpointed out of memory, how many it merely trimmed.
struct EvictionStats {
  size_t scanned = 0;
  size_t evicted = 0;
  size_t trimmed = 0;
};

class SketchRegistry {
 public:
  using EnginePtr = std::shared_ptr<MetricEngine>;

  // Name-hash shards of the directory. Power of two; 64 keeps the
  // hottest realistic core counts from colliding while costing ~6 KiB of
  // fixed overhead for the whole registry.
  static constexpr size_t kRegistryShards = 64;

  // What an evicted metric is charged: directory entry + name, no engine.
  static constexpr uint64_t kEvictedEntryBytes = 256;

  SketchRegistry() = default;
  SketchRegistry(const SketchRegistry&) = delete;
  SketchRegistry& operator=(const SketchRegistry&) = delete;

  // Wires the durability hook (persist::DurabilityManager). Called once,
  // before serving -- typically by DurabilityManager::RecoverInto. Null
  // (the default) runs the registry memory-only.
  void SetDurability(persist::DirectoryHook* durability) {
    durability_ = durability;
  }

  // Tenancy quotas, enforced at CREATE time (0 = unlimited, the
  // default). Memory is accounted per metric from MemoryFootprint(),
  // refreshed by eviction sweeps. Call before serving; not synchronized
  // against in-flight Creates.
  void SetLimits(uint64_t max_metrics, uint64_t max_memory_bytes) {
    max_metrics_.store(max_metrics, std::memory_order_relaxed);
    max_memory_bytes_.store(max_memory_bytes, std::memory_order_relaxed);
  }

  // Creates a metric; throws MetricExists if the name is taken,
  // QuotaExceeded when a tenancy limit would be crossed, invalid_argument
  // / runtime_error on a bad spec or name, or persist::IoError when the
  // durable CREATE record cannot be written (in which case the metric
  // does not exist, in memory or on disk).
  EnginePtr Create(const std::string& name, const MetricSpec& spec) {
    ValidateMetricName(name);
    ValidateMetricSpec(spec);
    EnginePtr engine = MakeEngine(spec);
    const uint64_t footprint = engine->MemoryFootprint();
    Shard& shard = ShardFor(name);
    {
      std::unique_lock<std::shared_mutex> lock(shard.mutex);
      if (shard.metrics.count(name) != 0) throw MetricExists(name);
      ReserveQuota(name, footprint);
      // Durable before visible: the manifest record and the metric's WAL
      // exist before any client can observe (and append to) the metric.
      if (durability_ != nullptr) {
        try {
          engine->SetLog(durability_->OnCreate(name, spec));
        } catch (...) {
          ReleaseQuota(footprint);
          throw;
        }
      }
      auto entry = std::make_shared<Entry>(spec);
      entry->last_touch_ms.store(NowMs(), std::memory_order_relaxed);
      entry->accounted_bytes.store(footprint, std::memory_order_relaxed);
      std::atomic_store_explicit(&entry->engine, engine,
                                 std::memory_order_release);
      shard.metrics.emplace(name, std::move(entry));
      shard.epoch.fetch_add(1, std::memory_order_release);
    }
    return engine;
  }

  // Recovery-path Create: installs an engine rebuilt from a checkpoint
  // blob (empty => fresh engine) positioned at WAL batch `batches`,
  // WITHOUT notifying the durability hook -- the metric already exists on
  // disk; the caller replays the WAL tail and then attaches the log via
  // SetLog. Quotas are accounted but NOT enforced: recovery must never
  // refuse state that was already acknowledged. Single-threaded use,
  // before the server starts.
  EnginePtr CreateRecovered(const std::string& name, const MetricSpec& spec,
                            const std::vector<uint8_t>& snapshot_blob,
                            uint64_t accepted_n, uint64_t batches) {
    ValidateMetricName(name);
    ValidateMetricSpec(spec);
    EnginePtr engine =
        snapshot_blob.empty()
            ? MakeEngine(spec)
            : MakeRecoveredEngine(spec, snapshot_blob, accepted_n, batches);
    const uint64_t footprint = engine->MemoryFootprint();
    Shard& shard = ShardFor(name);
    {
      std::unique_lock<std::shared_mutex> lock(shard.mutex);
      if (shard.metrics.count(name) != 0) throw MetricExists(name);
      total_metrics_.fetch_add(1, std::memory_order_relaxed);
      memory_bytes_.fetch_add(footprint, std::memory_order_relaxed);
      auto entry = std::make_shared<Entry>(spec);
      entry->last_touch_ms.store(NowMs(), std::memory_order_relaxed);
      entry->accounted_bytes.store(footprint, std::memory_order_relaxed);
      std::atomic_store_explicit(&entry->engine, engine,
                                 std::memory_order_release);
      shard.metrics.emplace(name, std::move(entry));
      shard.epoch.fetch_add(1, std::memory_order_release);
    }
    return engine;
  }

  // The engine for `name`, or nullptr when absent. Touches the metric's
  // idle clock and transparently rehydrates an evicted engine from its
  // eviction checkpoint (bit-identical: the checkpoint sat on a WAL batch
  // boundary and ReqSerde carries exact PRNG state). The returned handle
  // stays valid after a concurrent Drop or eviction (shared ownership);
  // a retired handle throws MetricRetired on Append, and re-resolving
  // through Find yields the fresh engine.
  EnginePtr Find(const std::string& name) {
    Shard& shard = ShardFor(name);
    EntryPtr entry;
    {
      std::shared_lock<std::shared_mutex> lock(shard.mutex);
      auto it = shard.metrics.find(name);
      if (it == shard.metrics.end()) return nullptr;
      entry = it->second;
    }
    entry->last_touch_ms.store(NowMs(), std::memory_order_relaxed);
    EnginePtr engine = std::atomic_load_explicit(&entry->engine,
                                                 std::memory_order_acquire);
    if (engine) return engine;
    return Rehydrate(name, entry);
  }

  // Find, but throws MetricNotFound instead of returning nullptr.
  EnginePtr Require(const std::string& name) {
    EnginePtr engine = Find(name);
    if (!engine) throw MetricNotFound(name);
    return engine;
  }

  // Whether the metric currently has an engine in memory (false while
  // evicted). Does not touch the idle clock -- observability only.
  bool IsResident(const std::string& name) const {
    const Shard& shard = ShardFor(name);
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.metrics.find(name);
    if (it == shard.metrics.end()) return false;
    return std::atomic_load_explicit(&it->second->engine,
                                     std::memory_order_acquire) != nullptr;
  }

  // Removes a metric; returns whether it existed. In-flight operations on
  // outstanding handles finish safely against the (now unlisted) engine
  // (its WAL goes quiet via MarkDropped). If the durable DROP record
  // fails, the metric is already gone from memory and the error
  // propagates: the next restart resurrects it, which is the recoverable
  // direction (dropping again beats silently losing a live metric).
  bool Drop(const std::string& name) {
    Shard& shard = ShardFor(name);
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.metrics.find(name);
    if (it == shard.metrics.end()) return false;
    EntryPtr entry = it->second;
    {
      // Lock order everywhere: shard.mutex before entry lifecycle.
      // (Rehydrate takes the lifecycle mutex alone.) The dropped flag
      // turns any concurrent rehydrate of this entry into MetricNotFound
      // rather than a resurrection.
      std::lock_guard<std::mutex> lifecycle(entry->lifecycle_mutex);
      entry->dropped.store(true, std::memory_order_release);
      shard.metrics.erase(it);
      total_metrics_.fetch_sub(1, std::memory_order_relaxed);
      memory_bytes_.fetch_sub(
          entry->accounted_bytes.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      shard.epoch.fetch_add(1, std::memory_order_release);
      if (durability_ != nullptr) durability_->OnDrop(name);
    }
    return true;
  }

  // Sweeps every shard for metrics idle past `idle_ms`. Durable idle
  // metrics are evicted: final checkpoint, WAL closed, engine dropped
  // from memory (Find rehydrates on next touch -- no acked item lost).
  // Memory-only idle metrics get TrimMemory() instead. Hot metrics just
  // have their memory accounting refreshed. Safe concurrently with
  // appends/queries/creates/drops; an appender racing an eviction sees
  // MetricRetired and the server retries against the rehydrated engine.
  EvictionStats EvictIdle(uint64_t idle_ms) {
    EvictionStats stats;
    const uint64_t now = NowMs();
    for (Shard& shard : shards_) {
      std::vector<std::pair<std::string, EntryPtr>> candidates;
      {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        candidates.reserve(shard.metrics.size());
        for (const auto& [name, entry] : shard.metrics) {
          candidates.emplace_back(name, entry);
        }
      }
      for (auto& [name, entry] : candidates) {
        ++stats.scanned;
        const uint64_t touch =
            entry->last_touch_ms.load(std::memory_order_relaxed);
        EnginePtr engine = std::atomic_load_explicit(
            &entry->engine, std::memory_order_acquire);
        if (touch > now || now - touch < idle_ms) {
          // Hot: refresh the per-metric accounting and move on.
          if (engine) AccountEntry(*entry, engine->MemoryFootprint());
          continue;
        }
        std::lock_guard<std::mutex> lifecycle(entry->lifecycle_mutex);
        if (entry->dropped.load(std::memory_order_acquire)) continue;
        // Re-read the idle clock under the lifecycle lock, against a
        // fresh clock: a Find may have touched this metric (or a slow
        // Rehydrate republished it -- it refreshes the touch under this
        // same mutex) since the unlocked scan above, possibly long ago
        // if this sweep is large. Deciding against the stale sweep-start
        // `now` would re-retire an engine the moment it came back.
        const uint64_t now_locked = NowMs();
        const uint64_t touch_locked =
            entry->last_touch_ms.load(std::memory_order_relaxed);
        engine = std::atomic_load_explicit(&entry->engine,
                                           std::memory_order_acquire);
        if (touch_locked > now_locked || now_locked - touch_locked < idle_ms) {
          if (engine) AccountEntry(*entry, engine->MemoryFootprint());
          continue;
        }
        if (!engine) continue;  // already evicted
        if (durability_ != nullptr && engine->wal() != nullptr) {
          // Unpublish BEFORE retiring. Once the pointer is null, a
          // racing appender's re-resolve parks in Rehydrate on this
          // lifecycle mutex instead of spinning on a still-published
          // retired handle -- with one core, that spin can burn every
          // bounded server retry before this thread runs again. The
          // ordering bounds the race: an append can only see
          // MetricRetired through a handle it grabbed before the null
          // store, so its first re-resolve already blocks until the
          // rehydrated engine is ready.
          EnginePtr empty;
          std::atomic_store_explicit(&entry->engine, empty,
                                     std::memory_order_release);
          try {
            engine->RetireForEviction();
          } catch (...) {
            // Checkpoint failed; the engine is still live and appendable
            // (strong guarantee), so republish it before rethrowing.
            std::atomic_store_explicit(&entry->engine, engine,
                                       std::memory_order_release);
            throw;
          }
          durability_->OnEvict(name);
          AccountEntry(*entry, kEvictedEntryBytes + name.size());
          rehydration_stats_evictions_.fetch_add(1,
                                                 std::memory_order_relaxed);
          ++stats.evicted;
        } else {
          engine->TrimMemory();
          AccountEntry(*entry, engine->MemoryFootprint());
          ++stats.trimmed;
        }
      }
    }
    return stats;
  }

  size_t size() const {
    return total_metrics_.load(std::memory_order_relaxed);
  }

  // Bytes currently charged against the memory quota (sum of per-metric
  // accounted footprints; refreshed by eviction sweeps).
  uint64_t AccountedMemoryBytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }

  uint64_t Evictions() const {
    return rehydration_stats_evictions_.load(std::memory_order_relaxed);
  }
  uint64_t Rehydrations() const {
    return rehydration_stats_rehydrations_.load(std::memory_order_relaxed);
  }

  // Monotone directory version: the sum of per-shard epochs, each bumped
  // by every Create/Drop in that shard. Reads are sequential over
  // monotone counters, so the sum observed by a later scan is never
  // smaller than an earlier one -- staleness is always detected.
  uint64_t Epoch() const {
    uint64_t sum = 0;
    for (const Shard& shard : shards_) {
      sum += shard.epoch.load(std::memory_order_acquire);
    }
    return sum;
  }

  // Sorted metric-name snapshot, epoch-cached: while no metric is created
  // or dropped, repeated LISTs are one lock-free atomic load; after a
  // CREATE/DROP only the touched shard's sorted run is rebuilt and the
  // global view re-merged lazily, on the next LIST.
  std::shared_ptr<const std::vector<std::string>> List() const {
    return list_cache_.Get([this] { return Epoch(); },
                           [this] { return MergeAllNames(); });
  }

  // One page of the directory, sorted: names matching `prefix` (empty =
  // all), skipping `offset` matches, returning at most `limit` (0 = no
  // limit). *total gets the full match count regardless of paging. Never
  // materializes more than the page plus the per-shard cached runs.
  std::vector<std::string> ListPage(const std::string& prefix,
                                    uint64_t offset, uint64_t limit,
                                    uint64_t* total) const {
    ValidateMetricPrefix(prefix);
    const std::string upper = PrefixSuccessor(prefix);
    struct Range {
      std::shared_ptr<const std::vector<std::string>> names;
      size_t pos;
      size_t end;
    };
    std::vector<Range> ranges;
    ranges.reserve(kRegistryShards);
    uint64_t matched = 0;
    for (const Shard& shard : shards_) {
      std::shared_ptr<const std::vector<std::string>> names =
          ShardNames(shard);
      auto begin = prefix.empty()
                       ? names->begin()
                       : std::lower_bound(names->begin(), names->end(),
                                          prefix);
      auto end = upper.empty()
                     ? names->end()
                     : std::lower_bound(begin, names->end(), upper);
      if (begin == end) continue;
      const size_t b = static_cast<size_t>(begin - names->begin());
      const size_t e = static_cast<size_t>(end - names->begin());
      matched += e - b;
      ranges.push_back(Range{std::move(names), b, e});
    }
    if (total != nullptr) *total = matched;
    std::vector<std::string> page;
    if (offset >= matched) return page;
    const uint64_t want = (limit == 0)
                              ? matched - offset
                              : std::min<uint64_t>(limit, matched - offset);
    page.reserve(static_cast<size_t>(want));
    // K-way merge of the per-shard sorted runs, counting off the offset
    // then emitting the page.
    auto greater = [&ranges](size_t a, size_t b) {
      return (*ranges[a].names)[ranges[a].pos] >
             (*ranges[b].names)[ranges[b].pos];
    };
    std::priority_queue<size_t, std::vector<size_t>, decltype(greater)>
        heap(greater);
    for (size_t i = 0; i < ranges.size(); ++i) heap.push(i);
    uint64_t skipped = 0;
    while (!heap.empty() && page.size() < want) {
      const size_t i = heap.top();
      heap.pop();
      if (skipped < offset) {
        ++skipped;
      } else {
        page.push_back((*ranges[i].names)[ranges[i].pos]);
      }
      if (++ranges[i].pos < ranges[i].end) heap.push(i);
    }
    return page;
  }

 private:
  // One metric's directory slot. Outlives eviction (the engine pointer
  // goes null); erased from the shard map only by Drop.
  struct Entry {
    explicit Entry(const MetricSpec& s) : spec(s) {}
    const MetricSpec spec;
    // Read/written with std::atomic_load/store; null while evicted.
    std::shared_ptr<MetricEngine> engine;
    // Serializes evict vs. rehydrate vs. drop for THIS metric. Taken
    // after the shard mutex when both are held; alone in Rehydrate.
    std::mutex lifecycle_mutex;
    std::atomic<uint64_t> last_touch_ms{0};
    std::atomic<uint64_t> accounted_bytes{0};
    std::atomic<bool> dropped{false};
  };
  using EntryPtr = std::shared_ptr<Entry>;

  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<std::string, EntryPtr> metrics;
    std::atomic<uint64_t> epoch{0};
    // Sorted-name snapshot of THIS shard, keyed on the shard epoch:
    // a CREATE/DROP elsewhere leaves this run untouched.
    concurrency::EpochSnapshotCache<std::vector<std::string>> names_cache;
  };

  Shard& ShardFor(const std::string& name) {
    return shards_[std::hash<std::string>{}(name) & (kRegistryShards - 1)];
  }
  const Shard& ShardFor(const std::string& name) const {
    return shards_[std::hash<std::string>{}(name) & (kRegistryShards - 1)];
  }

  static uint64_t NowMs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  // Re-charges a metric at `new_bytes`, keeping the global gauge in sync
  // (modular uint64 arithmetic absorbs shrinking footprints).
  void AccountEntry(Entry& entry, uint64_t new_bytes) {
    const uint64_t old_bytes =
        entry.accounted_bytes.exchange(new_bytes, std::memory_order_relaxed);
    memory_bytes_.fetch_add(new_bytes - old_bytes, std::memory_order_relaxed);
  }

  // Reserves one metric + `footprint` bytes against the quotas, rolling
  // back and throwing QuotaExceeded on either limit. Called under the
  // target shard's unique lock (so a rejected CREATE never becomes
  // visible).
  void ReserveQuota(const std::string& name, uint64_t footprint) {
    const uint64_t max_metrics =
        max_metrics_.load(std::memory_order_relaxed);
    const uint64_t prior_count =
        total_metrics_.fetch_add(1, std::memory_order_relaxed);
    if (max_metrics != 0 && prior_count >= max_metrics) {
      total_metrics_.fetch_sub(1, std::memory_order_relaxed);
      throw QuotaExceeded("metric quota exceeded (limit " +
                          std::to_string(max_metrics) +
                          "): cannot create '" + name + "'");
    }
    const uint64_t max_bytes =
        max_memory_bytes_.load(std::memory_order_relaxed);
    const uint64_t prior_bytes =
        memory_bytes_.fetch_add(footprint, std::memory_order_relaxed);
    if (max_bytes != 0 && prior_bytes + footprint > max_bytes) {
      memory_bytes_.fetch_sub(footprint, std::memory_order_relaxed);
      total_metrics_.fetch_sub(1, std::memory_order_relaxed);
      throw QuotaExceeded("memory quota exceeded (limit " +
                          std::to_string(max_bytes) +
                          " bytes): cannot create '" + name + "'");
    }
  }

  void ReleaseQuota(uint64_t footprint) {
    memory_bytes_.fetch_sub(footprint, std::memory_order_relaxed);
    total_metrics_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Rebuilds an evicted metric's engine from its eviction checkpoint +
  // WAL tail, exactly the restart-recovery procedure, so the rehydrated
  // engine is bit-identical to the evicted one. Serialized per entry by
  // the lifecycle mutex; concurrent Finds wait and share the result.
  EnginePtr Rehydrate(const std::string& name, const EntryPtr& entry) {
    std::lock_guard<std::mutex> lifecycle(entry->lifecycle_mutex);
    EnginePtr engine = std::atomic_load_explicit(&entry->engine,
                                                 std::memory_order_acquire);
    if (engine) return engine;  // another thread rehydrated first
    if (entry->dropped.load(std::memory_order_acquire)) return nullptr;
    util::CheckState(durability_ != nullptr,
                     "evicted metric without a durability hook");
    persist::RehydratedMetric r = durability_->OnRehydrate(name);
    EnginePtr fresh =
        r.state.snapshot_blob.empty()
            ? MakeEngine(entry->spec)
            : MakeRecoveredEngine(entry->spec, r.state.snapshot_blob,
                                  r.state.snapshot_accepted_n,
                                  r.state.snapshot_lsn);
    for (const std::vector<double>& batch : r.state.batches) {
      fresh->Append(batch.data(), batch.size());
    }
    fresh->Flush();
    fresh->SetLog(std::move(r.log));
    AccountEntry(*entry, fresh->MemoryFootprint());
    // Refresh the idle clock before publishing: rehydration can wait out
    // a long eviction sweep on the durability manager, leaving the
    // Find-time touch older than the idle TTL -- the metric's idle life
    // starts now, when it is actually usable again. The evictor re-reads
    // the touch under this same lifecycle mutex, so a just-published
    // engine can never be re-retired as idle.
    entry->last_touch_ms.store(NowMs(), std::memory_order_relaxed);
    std::atomic_store_explicit(&entry->engine, fresh,
                               std::memory_order_release);
    rehydration_stats_rehydrations_.fetch_add(1, std::memory_order_relaxed);
    return fresh;
  }

  // This shard's sorted name run (epoch-cached; rebuilt only after a
  // CREATE/DROP in this shard).
  std::shared_ptr<const std::vector<std::string>> ShardNames(
      const Shard& shard) const {
    return shard.names_cache.Get(
        [&shard] { return shard.epoch.load(std::memory_order_acquire); },
        [&shard] {
          std::shared_lock<std::shared_mutex> lock(shard.mutex);
          std::vector<std::string> names;
          names.reserve(shard.metrics.size());
          for (const auto& [name, entry] : shard.metrics) {
            (void)entry;
            names.push_back(name);
          }
          return names;  // std::map iterates sorted
        });
  }

  // Full sorted directory: k-way merge of the per-shard runs.
  std::vector<std::string> MergeAllNames() const {
    std::vector<std::shared_ptr<const std::vector<std::string>>> parts;
    parts.reserve(kRegistryShards);
    size_t count = 0;
    for (const Shard& shard : shards_) {
      parts.push_back(ShardNames(shard));
      count += parts.back()->size();
    }
    std::vector<std::string> merged;
    merged.reserve(count);
    std::vector<size_t> pos(parts.size(), 0);
    auto greater = [&parts, &pos](size_t a, size_t b) {
      return (*parts[a])[pos[a]] > (*parts[b])[pos[b]];
    };
    std::priority_queue<size_t, std::vector<size_t>, decltype(greater)>
        heap(greater);
    for (size_t i = 0; i < parts.size(); ++i) {
      if (!parts[i]->empty()) heap.push(i);
    }
    while (!heap.empty()) {
      const size_t i = heap.top();
      heap.pop();
      merged.push_back((*parts[i])[pos[i]]);
      if (++pos[i] < parts[i]->size()) heap.push(i);
    }
    return merged;
  }

  // Smallest string greater than every string with prefix `prefix`, or
  // empty when no finite bound exists (prefix all-0xff or empty).
  static std::string PrefixSuccessor(std::string prefix) {
    while (!prefix.empty()) {
      if (static_cast<unsigned char>(prefix.back()) != 0xff) {
        prefix.back() = static_cast<char>(prefix.back() + 1);
        return prefix;
      }
      prefix.pop_back();
    }
    return prefix;
  }

  static EnginePtr MakeEngine(const MetricSpec& spec) {
    switch (spec.kind) {
      case EngineKind::kPlain:
        return std::make_shared<PlainReqEngine>(spec);
      case EngineKind::kSharded:
        return std::make_shared<ShardedReqEngine>(spec);
      case EngineKind::kWindowed:
        return std::make_shared<WindowedReqEngine>(spec);
    }
    throw std::invalid_argument("unknown engine kind");
  }

  // Rebuilds an engine from a kind-tagged checkpoint blob. The blob is
  // untrusted (it came off disk): kind mismatches and serde corruption
  // throw runtime_error, which recovery surfaces at startup rather than
  // serving a metric whose state silently disagrees with its spec.
  static EnginePtr MakeRecoveredEngine(const MetricSpec& spec,
                                       const std::vector<uint8_t>& blob,
                                       uint64_t accepted_n,
                                       uint64_t batches) {
    util::CheckData(SnapshotBlobKind(blob) == spec.kind,
                    "snapshot engine kind differs from metric spec");
    const std::vector<uint8_t> payload = SnapshotBlobPayload(blob);
    switch (spec.kind) {
      case EngineKind::kPlain:
        return std::make_shared<PlainReqEngine>(
            spec, DeserializeSketch<double>(payload), accepted_n);
      case EngineKind::kSharded:
        return std::make_shared<ShardedReqEngine>(spec, payload, accepted_n,
                                                  batches);
      case EngineKind::kWindowed:
        return std::make_shared<WindowedReqEngine>(
            spec, window::WindowedReqSketch<double>::Deserialize(payload),
            accepted_n);
    }
    throw std::invalid_argument("unknown engine kind");
  }

  std::array<Shard, kRegistryShards> shards_;
  persist::DirectoryHook* durability_ = nullptr;
  std::atomic<uint64_t> max_metrics_{0};
  std::atomic<uint64_t> max_memory_bytes_{0};
  std::atomic<uint64_t> total_metrics_{0};
  std::atomic<uint64_t> memory_bytes_{0};
  std::atomic<uint64_t> rehydration_stats_evictions_{0};
  std::atomic<uint64_t> rehydration_stats_rehydrations_{0};
  // Whole-directory sorted view, keyed on the shard-epoch sum.
  concurrency::EpochSnapshotCache<std::vector<std::string>> list_cache_;
};

}  // namespace service
}  // namespace req

#endif  // REQSKETCH_SERVICE_SKETCH_REGISTRY_H_
