// SketchRegistry: the multi-tenant heart of the quantile service. Maps
// metric names to per-metric engines, each wrapping one of the repo's
// quantile primitives -- chosen once, at CREATE time:
//
//   kPlain    -> ReqSketch<double>: one deterministic sketch. Snapshots
//                serialize byte-identically to an in-process ReqSketch fed
//                the same stream with the same config (the loopback e2e
//                test holds this bit-exactly).
//   kSharded  -> ShardedReqSketch<double>: multi-shard ingest with
//                merge-on-query, for metrics hot enough that one
//                compaction cascade would bottleneck.
//   kWindowed -> WindowedReqSketch<double>: count-driven sliding window
//                (bucket_items per bucket, num_buckets buckets).
//
// Ingest path (all kinds): APPEND batches are staged through an SPSC
// buffer (concurrency/spsc_buffer.h) and drained into the underlying
// sketch in batches, so the per-item cost stays on the batch fast path and
// appends never hold the sketch lock for more than one drain. The staging
// producer role is serialized by a per-engine append mutex (many
// connections may append to one metric; they take turns as the SPSC
// producer), the consumer role by the engine state mutex.
//
// Query path (plain/windowed): queries first drain staged items (so every
// APPEND acknowledged before the query is visible), then run against an
// epoch-tagged snapshot -- a standalone ReqSketch copy with its sorted
// view prewarmed, cached in a concurrency::EpochSnapshotCache and rebuilt
// only after a drain actually changed the state. While a metric is not
// being appended to, any number of connections query it lock-free. The
// sharded engine delegates to ShardedReqSketch's own epoch-cached merged
// view, which implements the same pattern internally.
//
// The registry itself uses the same primitive one level up: the metric
// directory (LIST) is an epoch-tagged name snapshot, rebuilt only after a
// CREATE or DROP bumped the registry epoch.
//
// Error model: engines and registry throw the repo's standard exception
// taxonomy (invalid_argument for bad arguments, logic_error for queries on
// empty state, runtime_error for corrupt data) plus the typed
// MetricNotFound / MetricExists below, which the server maps to wire
// statuses.
#ifndef REQSKETCH_SERVICE_SKETCH_REGISTRY_H_
#define REQSKETCH_SERVICE_SKETCH_REGISTRY_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "concurrency/epoch_snapshot.h"
#include "concurrency/sharded_req_sketch.h"
#include "concurrency/spsc_buffer.h"
#include "core/req_serde.h"
#include "core/req_sketch.h"
#include "persist/metric_log.h"
#include "service/wire_protocol.h"
#include "util/validation.h"
#include "window/windowed_req_sketch.h"

namespace req {
namespace service {

struct MetricNotFound : std::invalid_argument {
  explicit MetricNotFound(const std::string& name)
      : std::invalid_argument("metric not found: " + name) {}
};

struct MetricExists : std::invalid_argument {
  explicit MetricExists(const std::string& name)
      : std::invalid_argument("metric already exists: " + name) {}
};

// Validates a CREATE spec before any engine is built, so a bad request
// fails with a precise message instead of surfacing from a constructor
// deep in the stack.
inline void ValidateMetricSpec(const MetricSpec& spec) {
  params::ValidateConfig(spec.base);
  util::CheckArg(spec.base.n_hint <= params::kMaxN,
                 "n_hint must not exceed 2^62");
  util::CheckArg(spec.buffer_capacity >= 1 &&
                     spec.buffer_capacity <= (uint64_t{1} << 32),
                 "buffer_capacity must be in [1, 2^32]");
  if (spec.kind == EngineKind::kSharded) {
    util::CheckArg(spec.num_shards >= 1 && spec.num_shards <= 4096,
                   "num_shards must be in [1, 4096]");
  }
  if (spec.kind == EngineKind::kWindowed) {
    util::CheckArg(spec.num_buckets >= 2 &&
                       spec.num_buckets <= (uint32_t{1} << 16),
                   "num_buckets must be in [2, 2^16]");
    // The wire protocol has no Rotate() injection, so service-managed
    // windows must be count-driven.
    util::CheckArg(spec.bucket_items >= 1,
                   "bucket_items must be >= 1 for service windows");
    util::CheckArg(
        spec.bucket_items <= params::kMaxN / spec.num_buckets,
        "num_buckets * bucket_items must not exceed 2^62");
  }
}

// One metric's engine. Thread safety: Append may be called from any number
// of connections concurrently (serialized internally); queries and
// Snapshot may run concurrently with appends and each other.
//
// Durability: when a WAL is attached (SetLog, done by the registry's
// durability hook or the recovery path), every Append logs its batch
// BEFORE staging it, under the same append mutex -- so the WAL's batch
// order IS the engine's apply order, and the engine's state at WAL
// position L is exactly "the first L batches applied". Snapshot() and the
// checkpoint hooks quiesce the append path to pin that correspondence.
class MetricEngine {
 public:
  virtual ~MetricEngine() = default;

  virtual EngineKind kind() const = 0;
  virtual const MetricSpec& spec() const = 0;

  // Total items accepted since CREATE (acknowledged appends; for windowed
  // metrics this is lifetime-accepted, not in-window).
  uint64_t AcceptedN() const {
    return accepted_n_.load(std::memory_order_acquire);
  }

  // Stages `count` items; rejects NaN up front (strong guarantee: nothing
  // is applied on throw -- including a WAL write failure, which surfaces
  // as persist::IoError before any state change).
  virtual void Append(const double* data, size_t count) = 0;

  // Makes every staged item query-visible.
  virtual void Flush() = 0;

  // Order-based queries. Observe every append acknowledged before the
  // call (each query drains staging first).
  virtual std::vector<uint64_t> GetRanks(const std::vector<double>& ys,
                                         Criterion criterion) = 0;
  virtual std::vector<double> GetQuantiles(const std::vector<double>& qs,
                                           Criterion criterion) = 0;
  virtual std::vector<double> GetCDF(const std::vector<double>& splits,
                                     Criterion criterion) = 0;

  // Serialized engine state: u8 engine kind | engine-specific serde bytes
  // (ReqSerde / sharded serde / windowed serde). Quiesces the append path
  // so the blob sits on a WAL batch boundary.
  std::vector<uint8_t> Snapshot() {
    std::lock_guard<std::mutex> produce(append_mutex_);
    return SnapshotLocked();
  }

  // Attaches the metric's WAL. Called before the engine is published
  // (CREATE) or after replay completes (recovery) -- never while other
  // threads are appending.
  void SetLog(std::shared_ptr<persist::MetricLog> log) {
    log_ = std::move(log);
  }
  persist::MetricLog* wal() const { return log_.get(); }

  // Checkpoint when the WAL has grown past its threshold; the server
  // calls this after APPEND acks. No-op without a WAL.
  void MaybeCheckpoint() {
    if (log_ && log_->ShouldCheckpoint()) ForceCheckpoint();
  }

  // Unconditional checkpoint (shutdown, tests). Takes the append mutex,
  // so the snapshot LSN is exact: state == first next_lsn() batches.
  void ForceCheckpoint() {
    if (!log_) return;
    std::lock_guard<std::mutex> produce(append_mutex_);
    const uint64_t lsn = log_->next_lsn();
    const std::vector<uint8_t> blob = SnapshotLocked();
    log_->WriteCheckpoint(lsn, AcceptedN(), blob);
  }

 protected:
  // Snapshot with append_mutex_ held by the caller.
  virtual std::vector<uint8_t> SnapshotLocked() = 0;

  // Serializes the producer role (SPSC producer / shard rotation) across
  // appending connections, and pins the WAL-position <-> engine-state
  // correspondence for snapshots and checkpoints.
  std::mutex append_mutex_;
  std::atomic<uint64_t> accepted_n_{0};
  std::shared_ptr<persist::MetricLog> log_;
};

// Splits a snapshot blob into its kind tag and serde payload; throws
// runtime_error on an empty or unknown-kind blob.
inline EngineKind SnapshotBlobKind(const std::vector<uint8_t>& blob) {
  util::CheckData(!blob.empty(), "empty snapshot blob");
  util::CheckData(blob[0] <= static_cast<uint8_t>(EngineKind::kWindowed),
                  "unknown snapshot engine kind");
  return static_cast<EngineKind>(blob[0]);
}

inline std::vector<uint8_t> SnapshotBlobPayload(
    const std::vector<uint8_t>& blob) {
  SnapshotBlobKind(blob);  // validates
  return std::vector<uint8_t>(blob.begin() + 1, blob.end());
}

namespace detail {

inline void CheckAppendable(const double* data, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    util::CheckArg(!std::isnan(data[i]), "cannot append NaN");
  }
}

}  // namespace detail

// --- staged engines (plain / windowed) -------------------------------------

// Shared machinery for the engines that stage appends through one SPSC
// buffer into a single underlying structure and serve queries from an
// epoch-cached ReqSketch snapshot. Derived classes choose the underlying
// type and how to snapshot it; the staging/epoch protocol lives here
// exactly once.
template <typename Underlying>
class StagedEngineBase : public MetricEngine {
 public:
  using Sketch = ReqSketch<double>;

  const MetricSpec& spec() const override { return spec_; }

  void Append(const double* data, size_t count) override {
    detail::CheckAppendable(data, count);
    std::lock_guard<std::mutex> produce(append_mutex_);
    // WAL before staging: if the log write fails (persist::IoError),
    // nothing was applied and nothing gets acknowledged. The reverse
    // order could acknowledge a batch that never reached the log.
    if (log_) log_->AppendBatch(data, count);
    size_t left = count;
    while (left > 0) {
      const size_t pushed = staging_.TryPushBulk(data, left);
      data += pushed;
      left -= pushed;
      if (left > 0) Drain();
    }
    accepted_n_.fetch_add(count, std::memory_order_release);
  }

  void Flush() override { Drain(); }

  std::vector<uint64_t> GetRanks(const std::vector<double>& ys,
                                 Criterion criterion) override {
    return View()->GetRanks(ys, criterion);
  }
  std::vector<double> GetQuantiles(const std::vector<double>& qs,
                                   Criterion criterion) override {
    return View()->GetQuantiles(qs, criterion);
  }
  std::vector<double> GetCDF(const std::vector<double>& splits,
                             Criterion criterion) override {
    return View()->GetCDF(splits, criterion);
  }

 protected:
  // accepted_n != 0 only on the recovery path, restoring the checkpoint's
  // acknowledged-item count before WAL replay re-appends the tail.
  StagedEngineBase(const MetricSpec& spec, Underlying underlying,
                   uint64_t accepted_n = 0)
      : spec_(spec),
        staging_(spec.buffer_capacity),
        underlying_(std::move(underlying)) {
    accepted_n_.store(accepted_n, std::memory_order_release);
  }

  // Builds the query snapshot from underlying_; called under
  // state_mutex_ (the sorted-view warm-up happens outside it).
  virtual Sketch MakeSnapshotLocked() = 0;

  void Drain() {
    std::lock_guard<std::mutex> lock(state_mutex_);
    drain_scratch_.clear();
    if (staging_.PopAll(&drain_scratch_) > 0) {
      underlying_.Update(drain_scratch_.data(), drain_scratch_.size());
      // Bump INSIDE the lock: a second query thread that serializes
      // behind this drain (pops nothing) must then read the bumped
      // epoch, or it could serve a cached snapshot missing items whose
      // append was acknowledged before that query began.
      epoch_.fetch_add(1, std::memory_order_release);
    }
  }

  std::shared_ptr<const Sketch> View() {
    Drain();
    return cache_.Get(
        [this] { return epoch_.load(std::memory_order_acquire); },
        [this] {
          std::unique_lock<std::mutex> lock(state_mutex_);
          Sketch snap = MakeSnapshotLocked();
          lock.unlock();
          // Warm the sorted view outside the state lock: queries on the
          // published snapshot then take only lock-free reads.
          snap.PrepareSortedView();
          return snap;
        });
  }

  const MetricSpec spec_;
  concurrency::SpscBuffer<double> staging_;
  // Guards underlying_, drain_scratch_, and the staging consumer role.
  // (The SPSC producer role is serialized by the base append_mutex_.)
  std::mutex state_mutex_;
  Underlying underlying_;
  std::vector<double> drain_scratch_;
  std::atomic<uint64_t> epoch_{0};
  concurrency::EpochSnapshotCache<Sketch> cache_;
};

// --- plain -----------------------------------------------------------------

class PlainReqEngine final : public StagedEngineBase<ReqSketch<double>> {
 public:
  explicit PlainReqEngine(const MetricSpec& spec)
      : StagedEngineBase(spec, Sketch(spec.base)) {}

  // Recovery: adopts a checkpoint-restored sketch (ReqSerde v2 carries
  // the exact PRNG state, so continuation is bit-identical).
  PlainReqEngine(const MetricSpec& spec, Sketch&& restored,
                 uint64_t accepted_n)
      : StagedEngineBase(spec, std::move(restored), accepted_n) {}

  EngineKind kind() const override { return EngineKind::kPlain; }

 protected:
  std::vector<uint8_t> SnapshotLocked() override {
    // The cached snapshot is a faithful copy (config, seed, levels,
    // schedule state), so it serializes byte-identically to the live
    // sketch -- and to an in-process sketch fed the same stream.
    std::shared_ptr<const Sketch> view = View();
    std::vector<uint8_t> blob{static_cast<uint8_t>(EngineKind::kPlain)};
    const std::vector<uint8_t> bytes = SerializeSketch(*view);
    blob.insert(blob.end(), bytes.begin(), bytes.end());
    return blob;
  }

 private:
  Sketch MakeSnapshotLocked() override { return underlying_; }
};

// --- sharded ---------------------------------------------------------------

class ShardedReqEngine final : public MetricEngine {
 public:
  using Sharded = concurrency::ShardedReqSketch<double>;

  explicit ShardedReqEngine(const MetricSpec& spec)
      : spec_(spec), sharded_(MakeConfig(spec)) {}

  // Recovery: restores the serialized shard set and resumes the
  // round-robin rotation where batch number `batches` left it, so WAL
  // replay routes every batch to the same shard it originally hit.
  ShardedReqEngine(const MetricSpec& spec,
                   const std::vector<uint8_t>& payload, uint64_t accepted_n,
                   uint64_t batches)
      : spec_(spec),
        next_shard_(static_cast<size_t>(batches % spec.num_shards)),
        sharded_(Sharded::Deserialize(payload)) {
    util::CheckData(sharded_.num_shards() == spec.num_shards,
                    "sharded snapshot shard count differs from spec");
    accepted_n_.store(accepted_n, std::memory_order_release);
  }

  EngineKind kind() const override { return EngineKind::kSharded; }
  const MetricSpec& spec() const override { return spec_; }

  void Append(const double* data, size_t count) override {
    detail::CheckAppendable(data, count);
    std::lock_guard<std::mutex> produce(append_mutex_);
    if (log_) log_->AppendBatch(data, count);
    // Whole batches rotate round-robin across shards: each shard's stream
    // (and therefore its sketch) is a pure function of the batch arrival
    // order, and the per-shard single-writer contract holds because the
    // append mutex serializes the producer role.
    sharded_.Update(next_shard_, data, count);
    next_shard_ = (next_shard_ + 1) % sharded_.num_shards();
    accepted_n_.fetch_add(count, std::memory_order_release);
  }

  // FlushAll is safe concurrently with producers (drains under the shard
  // locks), so queries need not take the append mutex.
  void Flush() override { sharded_.FlushAll(); }

  std::vector<uint64_t> GetRanks(const std::vector<double>& ys,
                                 Criterion criterion) override {
    Flush();
    return sharded_.GetRanks(ys, criterion);
  }
  std::vector<double> GetQuantiles(const std::vector<double>& qs,
                                   Criterion criterion) override {
    Flush();
    return sharded_.GetQuantiles(qs, criterion);
  }
  std::vector<double> GetCDF(const std::vector<double>& splits,
                             Criterion criterion) override {
    Flush();
    return sharded_.GetCDF(splits, criterion);
  }

 protected:
  std::vector<uint8_t> SnapshotLocked() override {
    // The caller (MetricEngine::Snapshot / ForceCheckpoint) holds the
    // append mutex, quiescing producers for the serialize: the sharded
    // serde requires empty staging buffers (buffered items would be
    // silently lost).
    sharded_.FlushAll();
    std::vector<uint8_t> blob{static_cast<uint8_t>(EngineKind::kSharded)};
    const std::vector<uint8_t> bytes = sharded_.Serialize();
    blob.insert(blob.end(), bytes.begin(), bytes.end());
    return blob;
  }

 private:
  static concurrency::ShardedReqConfig MakeConfig(const MetricSpec& spec) {
    concurrency::ShardedReqConfig config;
    config.num_shards = spec.num_shards;
    config.buffer_capacity = spec.buffer_capacity;
    config.base = spec.base;
    return config;
  }

  const MetricSpec spec_;
  size_t next_shard_ = 0;
  Sharded sharded_;
};

// --- windowed --------------------------------------------------------------

class WindowedReqEngine final
    : public StagedEngineBase<window::WindowedReqSketch<double>> {
 public:
  using Window = window::WindowedReqSketch<double>;

  explicit WindowedReqEngine(const MetricSpec& spec)
      : StagedEngineBase(spec, Window(MakeConfig(spec))) {}

  // Recovery: adopts a checkpoint-restored window (rotation is
  // count-driven, and each bucket's sketch carries its exact PRNG state,
  // so WAL replay rotates and compacts identically).
  WindowedReqEngine(const MetricSpec& spec, Window&& restored,
                    uint64_t accepted_n)
      : StagedEngineBase(spec, std::move(restored), accepted_n) {}

  EngineKind kind() const override { return EngineKind::kWindowed; }

 protected:
  std::vector<uint8_t> SnapshotLocked() override {
    // Serialize the window itself (ring, rotations, bucket epochs), not
    // its merged view: a restored snapshot keeps expiring correctly.
    // (Count-driven rotation happens inside the base drain's batch
    // update, at the same boundaries per-item feeding would produce.)
    Drain();
    std::lock_guard<std::mutex> lock(state_mutex_);
    std::vector<uint8_t> blob{static_cast<uint8_t>(EngineKind::kWindowed)};
    const std::vector<uint8_t> bytes = underlying_.Serialize();
    blob.insert(blob.end(), bytes.begin(), bytes.end());
    return blob;
  }

 private:
  static window::WindowedReqConfig MakeConfig(const MetricSpec& spec) {
    window::WindowedReqConfig config;
    config.num_buckets = spec.num_buckets;
    config.bucket_items = spec.bucket_items;
    config.base = spec.base;
    return config;
  }

  Sketch MakeSnapshotLocked() override {
    if (underlying_.is_empty()) {
      // Queries on the empty snapshot throw the standard empty-sketch
      // logic_error, matching the window's own checks.
      return Sketch(spec_.base);
    }
    return underlying_.MergedSnapshot();
  }
};

// --- the registry ----------------------------------------------------------

class SketchRegistry {
 public:
  using EnginePtr = std::shared_ptr<MetricEngine>;

  SketchRegistry() = default;
  SketchRegistry(const SketchRegistry&) = delete;
  SketchRegistry& operator=(const SketchRegistry&) = delete;

  // Wires the durability hook (persist::DurabilityManager). Called once,
  // before serving -- typically by DurabilityManager::RecoverInto. Null
  // (the default) runs the registry memory-only.
  void SetDurability(persist::DirectoryHook* durability) {
    durability_ = durability;
  }

  // Creates a metric; throws MetricExists if the name is taken,
  // invalid_argument / runtime_error on a bad spec or name, or
  // persist::IoError when the durable CREATE record cannot be written
  // (in which case the metric does not exist, in memory or on disk).
  EnginePtr Create(const std::string& name, const MetricSpec& spec) {
    ValidateMetricName(name);
    ValidateMetricSpec(spec);
    EnginePtr engine = MakeEngine(spec);
    {
      std::unique_lock<std::shared_mutex> lock(map_mutex_);
      if (engines_.count(name) != 0) throw MetricExists(name);
      // Durable before visible: the manifest record and the metric's WAL
      // exist before any client can observe (and append to) the metric.
      if (durability_ != nullptr) {
        engine->SetLog(durability_->OnCreate(name, spec));
      }
      engines_.emplace(name, engine);
    }
    epoch_.fetch_add(1, std::memory_order_release);
    return engine;
  }

  // Recovery-path Create: installs an engine rebuilt from a checkpoint
  // blob (empty => fresh engine) positioned at WAL batch `batches`,
  // WITHOUT notifying the durability hook -- the metric already exists on
  // disk; the caller replays the WAL tail and then attaches the log via
  // SetLog. Single-threaded use, before the server starts.
  EnginePtr CreateRecovered(const std::string& name, const MetricSpec& spec,
                            const std::vector<uint8_t>& snapshot_blob,
                            uint64_t accepted_n, uint64_t batches) {
    ValidateMetricName(name);
    ValidateMetricSpec(spec);
    EnginePtr engine =
        snapshot_blob.empty()
            ? MakeEngine(spec)
            : MakeRecoveredEngine(spec, snapshot_blob, accepted_n, batches);
    {
      std::unique_lock<std::shared_mutex> lock(map_mutex_);
      auto [it, inserted] = engines_.emplace(name, engine);
      (void)it;
      if (!inserted) throw MetricExists(name);
    }
    epoch_.fetch_add(1, std::memory_order_release);
    return engine;
  }

  // The engine for `name`, or nullptr when absent. The returned handle
  // stays valid after a concurrent Drop (shared ownership).
  EnginePtr Find(const std::string& name) const {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    auto it = engines_.find(name);
    return it == engines_.end() ? nullptr : it->second;
  }

  // Find, but throws MetricNotFound instead of returning nullptr.
  EnginePtr Require(const std::string& name) const {
    EnginePtr engine = Find(name);
    if (!engine) throw MetricNotFound(name);
    return engine;
  }

  // Removes a metric; returns whether it existed. In-flight operations on
  // outstanding handles finish safely against the (now unlisted) engine
  // (its WAL goes quiet via MarkDropped). If the durable DROP record
  // fails, the metric is already gone from memory and the error
  // propagates: the next restart resurrects it, which is the recoverable
  // direction (dropping again beats silently losing a live metric).
  bool Drop(const std::string& name) {
    bool erased = false;
    {
      std::unique_lock<std::shared_mutex> lock(map_mutex_);
      erased = engines_.erase(name) > 0;
      if (erased && durability_ != nullptr) durability_->OnDrop(name);
    }
    if (erased) epoch_.fetch_add(1, std::memory_order_release);
    return erased;
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    return engines_.size();
  }

  // Monotone directory version: bumped by every Create/Drop.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Sorted metric-name snapshot, epoch-cached: while no metric is created
  // or dropped, repeated LISTs are one lock-free atomic load.
  std::shared_ptr<const std::vector<std::string>> List() const {
    return list_cache_.Get(
        [this] { return epoch_.load(std::memory_order_acquire); },
        [this] {
          std::shared_lock<std::shared_mutex> lock(map_mutex_);
          std::vector<std::string> names;
          names.reserve(engines_.size());
          for (const auto& [name, engine] : engines_) {
            (void)engine;
            names.push_back(name);
          }
          return names;  // std::map iterates sorted
        });
  }

 private:
  static EnginePtr MakeEngine(const MetricSpec& spec) {
    switch (spec.kind) {
      case EngineKind::kPlain:
        return std::make_shared<PlainReqEngine>(spec);
      case EngineKind::kSharded:
        return std::make_shared<ShardedReqEngine>(spec);
      case EngineKind::kWindowed:
        return std::make_shared<WindowedReqEngine>(spec);
    }
    throw std::invalid_argument("unknown engine kind");
  }

  // Rebuilds an engine from a kind-tagged checkpoint blob. The blob is
  // untrusted (it came off disk): kind mismatches and serde corruption
  // throw runtime_error, which recovery surfaces at startup rather than
  // serving a metric whose state silently disagrees with its spec.
  static EnginePtr MakeRecoveredEngine(const MetricSpec& spec,
                                       const std::vector<uint8_t>& blob,
                                       uint64_t accepted_n,
                                       uint64_t batches) {
    util::CheckData(SnapshotBlobKind(blob) == spec.kind,
                    "snapshot engine kind differs from metric spec");
    const std::vector<uint8_t> payload = SnapshotBlobPayload(blob);
    switch (spec.kind) {
      case EngineKind::kPlain:
        return std::make_shared<PlainReqEngine>(
            spec, DeserializeSketch<double>(payload), accepted_n);
      case EngineKind::kSharded:
        return std::make_shared<ShardedReqEngine>(spec, payload, accepted_n,
                                                  batches);
      case EngineKind::kWindowed:
        return std::make_shared<WindowedReqEngine>(
            spec, window::WindowedReqSketch<double>::Deserialize(payload),
            accepted_n);
    }
    throw std::invalid_argument("unknown engine kind");
  }

  mutable std::shared_mutex map_mutex_;
  std::map<std::string, EnginePtr> engines_;
  persist::DirectoryHook* durability_ = nullptr;
  std::atomic<uint64_t> epoch_{0};
  concurrency::EpochSnapshotCache<std::vector<std::string>> list_cache_;
};

}  // namespace service
}  // namespace req

#endif  // REQSKETCH_SERVICE_SKETCH_REGISTRY_H_
