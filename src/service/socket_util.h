// Thin POSIX TCP helpers shared by the reqd server and the req-cli client
// library: an owning fd wrapper and full-buffer send/recv loops. Loopback
// IPv4 is the supported deployment shape (the service fronts a single
// host's sketch registry; cross-host distribution happens by shipping
// SNAPSHOT blobs, the Appendix D merge scenario).
#ifndef REQSKETCH_SERVICE_SOCKET_UTIL_H_
#define REQSKETCH_SERVICE_SOCKET_UTIL_H_

#if defined(_WIN32)
#error "the reqd service layer requires a POSIX socket API"
#endif

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "util/validation.h"

namespace req {
namespace service {

// Owning file descriptor (close-on-destruct, move-only).
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { Reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

inline std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Sends the whole buffer; returns false if the peer went away (EPIPE /
// ECONNRESET). MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE, so
// neither server nor CLI needs a process-wide signal disposition.
inline bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t r =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

// One recv; returns bytes read, 0 on orderly shutdown, -1 on error
// (EINTR retried internally).
inline ssize_t RecvSome(int fd, uint8_t* data, size_t size) {
  while (true) {
    const ssize_t r = ::recv(fd, data, size, 0);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

// Request/response over one connection is latency-bound, not
// bandwidth-bound: disable Nagle so small frames go out immediately.
inline void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Puts the fd into non-blocking mode. The epoll reactor requires it:
// with edge-triggered readiness a worker must read/write until EAGAIN,
// and a blocking call anywhere on that path would wedge the whole
// event loop behind one peer.
inline bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

// One gather-write (sendmsg over an iovec run) in non-blocking mode.
// Returns bytes written (>= 1), 0 when the socket buffer is full
// (EAGAIN -- the caller arms EPOLLOUT and waits), or -1 when the peer
// is gone. MSG_NOSIGNAL for the same reason as SendAll; sendmsg rather
// than writev because writev has no flags argument. The 0/EAGAIN
// conflation is safe: callers never pass an empty iovec run, and a
// successful write of a non-empty run returns at least one byte.
inline ssize_t WritevNonBlocking(int fd, const iovec* iov, size_t iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = iovcnt;
  while (true) {
    const ssize_t r = ::sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

// Parses a dotted-quad IPv4 address ("localhost" accepted as loopback).
inline in_addr ParseIPv4(const std::string& host) {
  in_addr addr{};
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  util::CheckArg(::inet_pton(AF_INET, resolved.c_str(), &addr) == 1,
                 "host must be an IPv4 address or \"localhost\"");
  return addr;
}

// --- deadlines -------------------------------------------------------------
//
// The hostile-network contract (see service/chaos_proxy.h and the README
// status table): no socket operation may block past its caller's
// deadline. A blackholed peer, a throttled link, or a stalled proxy must
// surface as a typed timeout, never a stuck thread. All helpers poll
// first and then use non-blocking I/O (MSG_DONTWAIT), so they work on
// blocking and non-blocking fds alike.

using SocketClock = std::chrono::steady_clock;
using SocketDeadline = SocketClock::time_point;

// A time_point far enough out to mean "no deadline".
inline SocketDeadline NoDeadline() { return SocketDeadline::max(); }

inline SocketDeadline DeadlineAfterMs(uint64_t ms) {
  if (ms == 0) return NoDeadline();
  return SocketClock::now() + std::chrono::milliseconds(ms);
}

// Milliseconds until `deadline`, clamped to [0, cap_ms]; cap_ms bounds a
// single poll so loops stay responsive to shutdown flags.
inline int PollTimeoutMs(SocketDeadline deadline, int cap_ms = 250) {
  if (deadline == NoDeadline()) return cap_ms;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SocketClock::now());
  if (left.count() <= 0) return 0;
  if (left.count() >= cap_ms) return cap_ms;
  return static_cast<int>(left.count());
}

// Polls `fd` for `events` until the deadline. Returns >0 when ready, 0 on
// deadline, <0 on a real poll error (EINTR retried).
inline int PollUntil(int fd, short events, SocketDeadline deadline) {
  while (true) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int r = ::poll(&pfd, 1, PollTimeoutMs(deadline));
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r > 0) return r;
    if (SocketClock::now() >= deadline) return 0;
  }
}

// Outcome of a deadline-bounded socket operation: the caller needs to
// distinguish "the peer went away" from "the deadline fired" -- the
// former is a transport error, the latter a typed timeout.
enum class IoStatus {
  kOk = 0,
  kClosed = 1,   // orderly EOF or peer reset
  kTimeout = 2,  // deadline expired with the operation incomplete
};

// Sends the whole buffer before `deadline`. Partial progress followed by
// a timeout reports kTimeout (the stream is desynced either way).
inline IoStatus SendAllDeadline(int fd, const uint8_t* data, size_t size,
                                SocketDeadline deadline) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t r = ::send(fd, data + sent, size - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return IoStatus::kClosed;
    }
    const int polled = PollUntil(fd, POLLOUT, deadline);
    if (polled < 0) return IoStatus::kClosed;
    if (polled == 0 && SocketClock::now() >= deadline) {
      return IoStatus::kTimeout;
    }
  }
  return IoStatus::kOk;
}

// One recv bounded by `deadline`: *got receives the byte count on kOk.
inline IoStatus RecvSomeDeadline(int fd, uint8_t* data, size_t size,
                                 SocketDeadline deadline, ssize_t* got) {
  while (true) {
    const ssize_t r = ::recv(fd, data, size, MSG_DONTWAIT);
    if (r > 0) {
      *got = r;
      return IoStatus::kOk;
    }
    if (r == 0) return IoStatus::kClosed;
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return IoStatus::kClosed;
    }
    const int polled = PollUntil(fd, POLLIN, deadline);
    if (polled < 0) return IoStatus::kClosed;
    if (polled == 0 && SocketClock::now() >= deadline) {
      return IoStatus::kTimeout;
    }
  }
}

// Non-blocking connect + poll: a blackholed address (dropped SYNs, a
// full accept queue) fails within `timeout_ms` instead of riding the
// kernel's minutes-long SYN retry schedule. 0 = no deadline. The fd is
// left in non-blocking mode on success; deadline-based senders and
// receivers (above) handle that, and callers that want blocking I/O can
// clear O_NONBLOCK themselves.
inline bool ConnectDeadline(int fd, const sockaddr* addr, socklen_t len,
                            uint64_t timeout_ms, std::string* error) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    *error = ErrnoMessage("fcntl");
    return false;
  }
  if (::connect(fd, addr, len) == 0) return true;
  if (errno != EINPROGRESS) {
    *error = ErrnoMessage("connect");
    return false;
  }
  const SocketDeadline deadline = DeadlineAfterMs(timeout_ms);
  while (true) {
    const int polled = PollUntil(fd, POLLOUT, deadline);
    if (polled < 0) {
      *error = ErrnoMessage("poll");
      return false;
    }
    if (polled == 0) {
      if (SocketClock::now() >= deadline) {
        *error = "connect timed out after " + std::to_string(timeout_ms) +
                 " ms";
        return false;
      }
      continue;
    }
    break;
  }
  int soerr = 0;
  socklen_t soerr_len = sizeof(soerr);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len) != 0) {
    *error = ErrnoMessage("getsockopt");
    return false;
  }
  if (soerr != 0) {
    *error = std::string("connect: ") + std::strerror(soerr);
    return false;
  }
  return true;
}

// Aborts the connection with an RST instead of an orderly FIN (SO_LINGER
// with a zero timeout): how the chaos proxy models a peer that died
// mid-conversation rather than one that hung up politely.
inline void HardReset(ScopedFd* fd) {
  if (!fd->valid()) return;
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd->get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  fd->Reset();
}

}  // namespace service
}  // namespace req

#endif  // REQSKETCH_SERVICE_SOCKET_UTIL_H_
