// Thin POSIX TCP helpers shared by the reqd server and the req-cli client
// library: an owning fd wrapper and full-buffer send/recv loops. Loopback
// IPv4 is the supported deployment shape (the service fronts a single
// host's sketch registry; cross-host distribution happens by shipping
// SNAPSHOT blobs, the Appendix D merge scenario).
#ifndef REQSKETCH_SERVICE_SOCKET_UTIL_H_
#define REQSKETCH_SERVICE_SOCKET_UTIL_H_

#if defined(_WIN32)
#error "the reqd service layer requires a POSIX socket API"
#endif

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "util/validation.h"

namespace req {
namespace service {

// Owning file descriptor (close-on-destruct, move-only).
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { Reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

inline std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Sends the whole buffer; returns false if the peer went away (EPIPE /
// ECONNRESET). MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE, so
// neither server nor CLI needs a process-wide signal disposition.
inline bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t r =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

// One recv; returns bytes read, 0 on orderly shutdown, -1 on error
// (EINTR retried internally).
inline ssize_t RecvSome(int fd, uint8_t* data, size_t size) {
  while (true) {
    const ssize_t r = ::recv(fd, data, size, 0);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

// Request/response over one connection is latency-bound, not
// bandwidth-bound: disable Nagle so small frames go out immediately.
inline void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Parses a dotted-quad IPv4 address ("localhost" accepted as loopback).
inline in_addr ParseIPv4(const std::string& host) {
  in_addr addr{};
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  util::CheckArg(::inet_pton(AF_INET, resolved.c_str(), &addr) == 1,
                 "host must be an IPv4 address or \"localhost\"");
  return addr;
}

}  // namespace service
}  // namespace req

#endif  // REQSKETCH_SERVICE_SOCKET_UTIL_H_
