// ChaosProxy: an in-process TCP fault-injection proxy for hostile-network
// testing. It sits between a ReqClient and a ReqdServer (or any TCP pair)
// and injects, deterministically and per direction, the degradations a
// real network produces:
//
//   * added latency (fixed + seeded jitter) on every forwarded chunk
//   * bandwidth throttling (bytes/sec pacing)
//   * mid-frame connection resets (RST after N forwarded bytes)
//   * torn sends (forward a strict byte prefix, then RST -- the peer sees
//     a frame cut off mid-payload, exactly the shape of a peer that died
//     while its kernel had half a frame in flight)
//   * blackhole/stall (stop forwarding but keep the connection open, so
//     only a deadline can save the peer)
//   * connect refusals (accept + immediate RST, optionally only the
//     first N connections)
//
// Determinism: every probabilistic choice (jitter) comes from a
// per-connection LCG stream seeded by config.seed and the connection id,
// so a failing chaos run replays from its seed. Byte thresholds
// (reset_after_bytes etc.) are exact counters, not probabilities.
//
// This is the socket-layer sibling of persist/io_injector.h: the real
// syscalls run against real loopback sockets, just degraded at the
// injected fault, and both endpoints then have to prove their deadline /
// shedding / reconciliation machinery against genuine TCP behavior
// (tests/service_chaos_test.cc drives the full client-proxy-server
// stack through every fault class).
//
// Concurrency model: one relay thread per proxied connection, polling
// both fds and forwarding in both directions. Single-threaded relaying
// sidesteps fd-lifetime races between direction pumps (an injected RST
// closes both fds; a sibling thread could otherwise poll a recycled fd
// number), and half-duplex relaying matches the request/response shape
// of the wire protocol. Latency injection therefore serializes the two
// directions of one connection -- fine for a fault injector, wrong for a
// production proxy.
//
// Lifecycle mirrors ReqdServer: Start() binds an ephemeral loopback port
// (read back via port()), Stop() shuts every relay down and joins all
// threads; the destructor calls Stop(). Faults are mutable mid-run via
// set_config() (atomic snapshot per forwarded chunk), which is how tests
// flip a healthy link into a blackhole under an in-flight request.
#ifndef REQSKETCH_SERVICE_CHAOS_PROXY_H_
#define REQSKETCH_SERVICE_CHAOS_PROXY_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/socket_util.h"
#include "util/validation.h"

namespace req {
namespace service {

// Faults applied to one direction of a proxied connection ("up" is
// client -> server bytes, "down" is server -> client). All byte
// thresholds count bytes arriving on that direction since the connection
// opened; 0 disables the fault.
struct ChaosDirection {
  // Added to every forwarded chunk: fixed floor + seeded uniform jitter.
  uint32_t latency_ms = 0;
  uint32_t jitter_ms = 0;
  // Pacing budget; bytes beyond it wait. 0 = unthrottled.
  uint64_t bytes_per_sec = 0;
  // Hard-RST both sides once this many bytes have arrived.
  uint64_t reset_after_bytes = 0;
  // Forward bytes up to the threshold, then RST: the receiving peer sees
  // a torn stream ending mid-frame.
  uint64_t torn_after_bytes = 0;
  // Swallow bytes past this threshold while the sockets stay open: the
  // connection looks alive, and only a deadline on the endpoint bounds
  // the wait.
  uint64_t blackhole_after_bytes = 0;
};

struct ChaosConfig {
  uint64_t seed = 1;
  // Port to listen on; 0 (the default, and what tests want) binds an
  // ephemeral port, read back via port(). Fixed ports are for the
  // standalone chaos-proxy binary. Not mutable via set_config().
  uint16_t listen_port = 0;
  // Refuse every new connection (accept + immediate RST)...
  bool refuse_connects = false;
  // ...or only the first N, then behave (a peer that came up late).
  // Counted across the proxy's lifetime.
  uint64_t refuse_first = 0;
  ChaosDirection up;
  ChaosDirection down;
};

class ChaosProxy {
 public:
  // Forwards every accepted connection to upstream_host:upstream_port.
  ChaosProxy(std::string upstream_host, uint16_t upstream_port,
             const ChaosConfig& config = {})
      : upstream_host_(std::move(upstream_host)),
        upstream_port_(upstream_port),
        config_(std::make_shared<const ChaosConfig>(config)) {}

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  ~ChaosProxy() { Stop(); }

  void Start() {
    util::CheckState(!running_.load(), "proxy already started");
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) throw std::runtime_error(ErrnoMessage("socket"));
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = ParseIPv4("127.0.0.1");
    addr.sin_port = htons(std::atomic_load(&config_)->listen_port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error(ErrnoMessage("bind"));
    }
    if (::listen(fd.get(), 64) != 0) {
      throw std::runtime_error(ErrnoMessage("listen"));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      throw std::runtime_error(ErrnoMessage("getsockname"));
    }
    port_ = ntohs(bound.sin_port);
    listen_fd_ = std::move(fd);
    running_.store(true);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  void Stop() {
    if (!running_.exchange(false)) return;
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    listen_fd_.Reset();
    // Wake relays blocked in poll, then join (the map is moved out
    // before joining -- a relay's exit path takes conn_mutex_).
    std::map<uint64_t, std::thread> remaining;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (const auto& [id, conn] : conns_) {
        (void)id;
        ::shutdown(conn->client.get(), SHUT_RDWR);
        ::shutdown(conn->upstream.get(), SHUT_RDWR);
      }
      remaining = std::move(threads_);
      threads_.clear();
      finished_ids_.clear();
    }
    for (auto& [id, t] : remaining) {
      (void)id;
      if (t.joinable()) t.join();
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns_.clear();
  }

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Swaps the fault plan; relays pick it up on their next chunk.
  void set_config(const ChaosConfig& config) {
    std::atomic_store(&config_,
                      std::make_shared<const ChaosConfig>(config));
  }
  ChaosConfig config() const { return *std::atomic_load(&config_); }

  // Monitoring counters (tests assert against these).
  uint64_t Accepted() const { return accepted_.load(); }
  uint64_t Refused() const { return refused_.load(); }
  uint64_t Resets() const { return resets_.load(); }
  uint64_t TornSends() const { return torn_.load(); }
  uint64_t Blackholed() const { return blackholed_.load(); }
  uint64_t BytesUp() const { return bytes_up_.load(); }
  uint64_t BytesDown() const { return bytes_down_.load(); }
  // Relays still live (0 after every connection wound down: the no-
  // thread-leak assertion of the chaos suite).
  uint64_t LiveConnections() const {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    return conns_.size();
  }

 private:
  struct Conn {
    ScopedFd client;
    ScopedFd upstream;
  };

  // Per-direction relay state inside one connection's thread.
  struct DirState {
    uint64_t arrived = 0;       // bytes received from src this connection
    bool blackholed = false;    // swallowing (counted once)
    uint64_t rng = 0;           // deterministic jitter stream
  };

  void AcceptLoop() {
    while (running_.load(std::memory_order_acquire)) {
      pollfd pfd{};
      pfd.fd = listen_fd_.get();
      pfd.events = POLLIN;
      const int polled = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (!running_.load(std::memory_order_acquire)) break;
      if (polled <= 0) continue;
      ScopedFd client(::accept(listen_fd_.get(), nullptr, nullptr));
      if (!client.valid()) {
        if (errno == EBADF || errno == EINVAL) break;
        continue;
      }
      const uint64_t id = accepted_.fetch_add(1) + 1;
      const std::shared_ptr<const ChaosConfig> cfg =
          std::atomic_load(&config_);
      if (cfg->refuse_connects ||
          (cfg->refuse_first > 0 && id <= cfg->refuse_first)) {
        refused_.fetch_add(1, std::memory_order_relaxed);
        HardReset(&client);
        continue;
      }
      ScopedFd upstream = DialUpstream();
      if (!upstream.valid()) {
        refused_.fetch_add(1, std::memory_order_relaxed);
        HardReset(&client);
        continue;
      }
      SetNoDelay(client.get());
      SetNoDelay(upstream.get());
      auto conn = std::make_shared<Conn>();
      conn->client = std::move(client);
      conn->upstream = std::move(upstream);
      {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conns_.emplace(id, conn);
        threads_.emplace(
            id, std::thread([this, conn, id] { Relay(conn, id); }));
      }
      ReapFinished();
    }
  }

  ScopedFd DialUpstream() {
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return ScopedFd();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr = ParseIPv4(upstream_host_);
    addr.sin_port = htons(upstream_port_);
    std::string error;
    if (!ConnectDeadline(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr), /*timeout_ms=*/2000, &error)) {
      return ScopedFd();
    }
    return fd;
  }

  // Relays both directions of one connection until EOF on both, an
  // injected abort, or Stop().
  void Relay(const std::shared_ptr<Conn>& conn, uint64_t id) {
    DirState up, down;
    up.rng = SeedFor(id, /*up=*/true);
    down.rng = SeedFor(id, /*up=*/false);
    bool up_open = true;    // client still sending
    bool down_open = true;  // upstream still sending
    bool aborted = false;
    uint8_t chunk[1 << 14];
    while (!aborted && (up_open || down_open) &&
           running_.load(std::memory_order_acquire)) {
      pollfd pfds[2];
      int n = 0;
      int up_at = -1, down_at = -1;
      if (up_open) {
        up_at = n;
        pfds[n].fd = conn->client.get();
        pfds[n].events = POLLIN;
        pfds[n].revents = 0;
        ++n;
      }
      if (down_open) {
        down_at = n;
        pfds[n].fd = conn->upstream.get();
        pfds[n].events = POLLIN;
        pfds[n].revents = 0;
        ++n;
      }
      const int polled = ::poll(pfds, static_cast<nfds_t>(n), 50);
      if (!running_.load(std::memory_order_acquire)) break;
      if (polled < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (polled == 0) continue;
      if (up_at >= 0 && pfds[up_at].revents != 0) {
        if (!RelayChunk(conn, /*is_up=*/true, &up, chunk, sizeof(chunk),
                        &up_open, &aborted)) {
          continue;  // state flags updated inside
        }
      }
      if (down_at >= 0 && pfds[down_at].revents != 0) {
        RelayChunk(conn, /*is_up=*/false, &down, chunk, sizeof(chunk),
                   &down_open, &aborted);
      }
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns_.erase(id);  // closes both fds (unless an abort already did)
    finished_ids_.push_back(id);
  }

  // Receives one chunk on the given direction and forwards it through
  // the fault plan. Returns false when the direction (or the whole
  // connection) ended; *open / *aborted are updated accordingly.
  bool RelayChunk(const std::shared_ptr<Conn>& conn, bool is_up,
                  DirState* state, uint8_t* chunk, size_t chunk_size,
                  bool* open, bool* aborted) {
    const int src = is_up ? conn->client.get() : conn->upstream.get();
    const int dst = is_up ? conn->upstream.get() : conn->client.get();
    const ssize_t got = ::recv(src, chunk, chunk_size, MSG_DONTWAIT);
    if (got == 0) {
      // Orderly EOF: propagate the half-close, keep the other direction
      // flowing (a client can shut its write side and still read).
      ::shutdown(dst, SHUT_WR);
      *open = false;
      return false;
    }
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return true;
      }
      *open = false;
      ::shutdown(dst, SHUT_WR);
      return false;
    }
    const std::shared_ptr<const ChaosConfig> cfg =
        std::atomic_load(&config_);
    const ChaosDirection& dir = is_up ? cfg->up : cfg->down;
    std::atomic<uint64_t>& forwarded_total = is_up ? bytes_up_ : bytes_down_;
    size_t len = static_cast<size_t>(got);
    const uint64_t before = state->arrived;
    state->arrived += len;

    // Blackhole: swallow this chunk (and all later ones) while both
    // sockets stay open. Re-checked per chunk so set_config() can open a
    // blackhole mid-conversation.
    if (state->blackholed || (dir.blackhole_after_bytes > 0 &&
                              state->arrived > dir.blackhole_after_bytes)) {
      size_t pass = 0;
      if (!state->blackholed) {
        blackholed_.fetch_add(1, std::memory_order_relaxed);
        if (dir.blackhole_after_bytes > before) {
          pass = static_cast<size_t>(dir.blackhole_after_bytes - before);
        }
      }
      state->blackholed = true;
      if (pass > 0 && SendThrottled(dst, chunk, pass, dir, &state->rng)) {
        forwarded_total.fetch_add(pass, std::memory_order_relaxed);
      }
      return true;
    }

    // Torn send: forward a strict prefix of the stream, then abort with
    // an RST -- the receiver holds a frame cut off mid-payload.
    if (dir.torn_after_bytes > 0 && state->arrived > dir.torn_after_bytes) {
      const size_t pass =
          dir.torn_after_bytes > before
              ? static_cast<size_t>(dir.torn_after_bytes - before)
              : 0;
      if (pass > 0 && SendThrottled(dst, chunk, pass, dir, &state->rng)) {
        forwarded_total.fetch_add(pass, std::memory_order_relaxed);
      }
      torn_.fetch_add(1, std::memory_order_relaxed);
      AbortConn(conn, aborted);
      return false;
    }

    // Reset: both sides die before any of this chunk is forwarded.
    if (dir.reset_after_bytes > 0 && state->arrived > dir.reset_after_bytes) {
      resets_.fetch_add(1, std::memory_order_relaxed);
      AbortConn(conn, aborted);
      return false;
    }

    if (!SendThrottled(dst, chunk, len, dir, &state->rng)) {
      *open = false;
      return false;
    }
    forwarded_total.fetch_add(len, std::memory_order_relaxed);
    return true;
  }

  // Applies latency + pacing, then sends the whole buffer. False on a
  // dead peer (the relay then winds the direction down).
  bool SendThrottled(int dst, const uint8_t* data, size_t len,
                     const ChaosDirection& dir, uint64_t* rng) {
    if (dir.latency_ms > 0 || dir.jitter_ms > 0) {
      uint64_t delay = dir.latency_ms;
      if (dir.jitter_ms > 0) delay += NextRand(rng) % (dir.jitter_ms + 1);
      SleepInterruptible(delay);
    }
    if (dir.bytes_per_sec > 0) {
      SleepInterruptible(len * 1000 / dir.bytes_per_sec);
    }
    return SendAllDeadline(dst, data, len, DeadlineAfterMs(5000)) ==
           IoStatus::kOk;
  }

  // RSTs both sides of the connection, exactly once.
  void AbortConn(const std::shared_ptr<Conn>& conn, bool* aborted) {
    if (*aborted) return;
    *aborted = true;
    HardReset(&conn->client);
    HardReset(&conn->upstream);
  }

  // Sleeps `ms` in slices, bailing early on Stop().
  void SleepInterruptible(uint64_t ms) {
    const SocketDeadline until = DeadlineAfterMs(ms);
    while (ms > 0 && running_.load(std::memory_order_acquire) &&
           SocketClock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<uint64_t>(ms, 20)));
    }
  }

  uint64_t SeedFor(uint64_t id, bool up) const {
    const std::shared_ptr<const ChaosConfig> cfg =
        std::atomic_load(&config_);
    // splitmix-style stirring keeps nearby (seed, id) pairs decorrelated.
    uint64_t z = cfg->seed + id * 0x9E3779B97F4A7C15ULL + (up ? 0 : 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static uint64_t NextRand(uint64_t* state) {
    *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
    return *state >> 33;
  }

  void ReapFinished() {
    std::vector<std::thread> done;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (uint64_t id : finished_ids_) {
        auto it = threads_.find(id);
        if (it == threads_.end()) continue;
        done.push_back(std::move(it->second));
        threads_.erase(it);
      }
      finished_ids_.clear();
    }
    for (std::thread& t : done) {
      if (t.joinable()) t.join();
    }
  }

  const std::string upstream_host_;
  const uint16_t upstream_port_;
  std::shared_ptr<const ChaosConfig> config_;
  ScopedFd listen_fd_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  mutable std::mutex conn_mutex_;
  std::map<uint64_t, std::shared_ptr<Conn>> conns_;
  std::map<uint64_t, std::thread> threads_;
  std::vector<uint64_t> finished_ids_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> resets_{0};
  std::atomic<uint64_t> torn_{0};
  std::atomic<uint64_t> blackholed_{0};
  std::atomic<uint64_t> bytes_up_{0};
  std::atomic<uint64_t> bytes_down_{0};
};

}  // namespace service
}  // namespace req

#endif  // REQSKETCH_SERVICE_CHAOS_PROXY_H_
