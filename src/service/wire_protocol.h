// Wire protocol for the reqd quantile service: a small length-prefixed
// binary protocol multiplexing many named metrics over one TCP connection.
//
// Framing (little-endian, same byte conventions as util/serde.h):
//
//   frame    := u32 payload_length | payload
//   request  := u8 opcode | body
//   response := u8 status | body        (status != kOk: body = error string)
//
// payload_length counts the payload bytes only (not itself), must be >= 1
// (the opcode/status byte) and <= kMaxFramePayload. A length prefix beyond
// that bound means the stream is garbage or hostile; the decoder throws and
// the server drops the connection rather than buffering unbounded input.
//
// Request bodies (strings are u64-length-prefixed, arrays are
// u64-count-prefixed element runs, exactly as BinaryWriter writes them):
//
//   PING      (empty)
//   CREATE    name | u8 kind | u32 k_base | u8 accuracy | u64 n_hint |
//             u64 seed | u32 num_shards | u64 buffer_capacity |
//             u32 num_buckets | u64 bucket_items
//   APPEND    name | f64[] items
//   FLUSH     name
//   RANK      name | u8 criterion | f64[] query points
//   QUANTILES name | u8 criterion | f64[] normalized ranks
//   CDF       name | u8 criterion | f64[] ascending split points
//   SNAPSHOT  name
//   LIST      (empty)                      -- v1 form: full listing
//   LIST      prefix | u64 offset | u64 limit   -- v2 paged form
//   DROP      name
//   STATS     (empty)                      -- v3: server counters
//
// Response bodies on kOk:
//
//   PING      u8 protocol version
//   CREATE    (empty)
//   APPEND    u64 n   (items accepted since CREATE, this batch included)
//   FLUSH     u64 n
//   RANK      u64[] estimated absolute ranks
//   QUANTILES f64[] quantile values
//   CDF       f64[] normalized ranks (one per split, plus the trailing 1.0)
//   SNAPSHOT  u8[]  engine snapshot blob (u8 engine kind | engine serde)
//   LIST      u64 count | count * name                    -- v1 form
//   LIST      u64 total | u64 count | count * name        -- v2 paged form
//   DROP      (empty)
//   STATS     u64 count | count * (name | u64 value)      -- named counters
//
// STATS keys are additive: servers may grow the counter set and clients
// must treat the response as an open key->value map, never a fixed
// layout (the same additive-evolution rule as the bench JSON schemas).
//
// LIST versioning: an empty LIST body is the v1 request and gets the v1
// response, so old clients keep working byte-for-byte against a v2
// server. The paged form filters by name prefix (empty = all), skips
// `offset` matches and returns at most `limit` names (0 = no limit);
// `total` is the number of matches before pagination.
//
// Parsing treats every payload as untrusted: unknown opcodes, bad enum
// values, malformed names, counts that overrun the payload, and trailing
// bytes all throw std::runtime_error (util::CheckData), mirroring the
// hardening contract of core/req_serde.h. Encode/Parse round-trip bit
// exactly; tests/service_protocol_test.cc holds the line.
#ifndef REQSKETCH_SERVICE_WIRE_PROTOCOL_H_
#define REQSKETCH_SERVICE_WIRE_PROTOCOL_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/req_common.h"
#include "util/serde.h"
#include "util/validation.h"

namespace req {
namespace service {

inline constexpr uint8_t kProtocolVersion = 3;

// Hard ceiling on a frame payload. Large enough for a ~4M-item APPEND or
// any realistic snapshot, small enough that a corrupt or hostile length
// prefix cannot make the server buffer gigabytes.
inline constexpr uint32_t kMaxFramePayload = uint32_t{1} << 26;  // 64 MiB

inline constexpr size_t kMaxMetricNameLen = 255;

enum class Opcode : uint8_t {
  kPing = 0,
  kCreate = 1,
  kAppend = 2,
  kFlush = 3,
  kRank = 4,
  kQuantiles = 5,
  kCdf = 6,
  kSnapshot = 7,
  kList = 8,
  kDrop = 9,
  // v3: the server's monitoring counters (connections, frames, sheds,
  // deadline hits, accept failures, ...) as named u64 pairs, so
  // operators and the chaos suite can observe degradation over the wire.
  kStats = 10,
};

enum class Status : uint8_t {
  kOk = 0,
  kBadRequest = 1,  // malformed frame or invalid arguments
  kNotFound = 2,    // metric does not exist
  kExists = 3,      // CREATE of a metric that already exists
  kError = 4,       // unexpected server-side failure
  // CREATE rejected by a registry quota (metric count or memory). Not a
  // transport failure and not retryable as-is: the client surfaces it as
  // a typed error and must NOT blind-retry (v2).
  kQuotaExceeded = 5,
  // The server shed this connection or request because it is at its
  // connection cap (v3). Nothing was applied; a client may retry, but
  // ONLY after backing off -- hot-retrying a shedding server is load the
  // server just said it cannot take (ReqClient enforces the backoff).
  kOverloaded = 6,
  // The request missed its server-side time budget (v3). For a request
  // shed BEFORE dispatch nothing was applied. The server never answers
  // kDeadlineExceeded after a mutation has been applied -- a late
  // mutation acks normally, so response.n reconciliation stays exact.
  kDeadlineExceeded = 7,
};

// Which engine a metric runs on (chosen once, at CREATE).
enum class EngineKind : uint8_t {
  kPlain = 0,     // single ReqSketch: deterministic, byte-stable snapshots
  kSharded = 1,   // ShardedReqSketch: multi-shard ingest, merge-on-query
  kWindowed = 2,  // WindowedReqSketch: count-driven sliding window
};

// Per-metric engine configuration carried by CREATE. Fields beyond the
// engine's kind are ignored by the other kinds (e.g. num_buckets for a
// plain metric), matching how the registry validates only what it uses.
struct MetricSpec {
  EngineKind kind = EngineKind::kPlain;
  // base.k_base / base.accuracy / base.n_hint / base.seed travel on the
  // wire; coin and schedule stay at their defaults (the paper's algorithm).
  ReqConfig base;
  // kSharded: shard count. kPlain/kWindowed ignore it.
  uint32_t num_shards = 4;
  // SPSC staging capacity in items, all kinds (every engine routes ingest
  // through a staging buffer; see service/sketch_registry.h).
  uint64_t buffer_capacity = 4096;
  // kWindowed: ring size and count-driven rotation threshold.
  uint32_t num_buckets = 8;
  uint64_t bucket_items = uint64_t{1} << 16;
};

struct Request {
  Opcode op = Opcode::kPing;
  std::string metric;                 // every op except PING/LIST
  MetricSpec spec;                    // CREATE
  Criterion criterion = Criterion::kInclusive;  // RANK/QUANTILES/CDF
  std::vector<double> values;         // APPEND items / query points
  // LIST v2 pagination; list_paged=false encodes the v1 empty body.
  bool list_paged = false;
  std::string list_prefix;            // empty = every metric
  uint64_t list_offset = 0;           // matches to skip
  uint64_t list_limit = 0;            // max names returned; 0 = no limit
};

struct Response {
  Status status = Status::kOk;
  std::string error;                  // status != kOk
  uint8_t protocol_version = 0;       // PING
  uint64_t n = 0;                     // APPEND / FLUSH
  std::vector<uint64_t> ranks;        // RANK
  std::vector<double> values;         // QUANTILES / CDF
  std::vector<uint8_t> blob;          // SNAPSHOT
  std::vector<std::string> names;     // LIST (one page in the v2 form)
  bool list_paged = false;            // LIST: response carries `total`
  uint64_t total = 0;                 // LIST v2: matches before paging
  // STATS: named server counters, in server-chosen order.
  std::vector<std::pair<std::string, uint64_t>> stats;
};

// Thrown by the client when the server answers with a non-kOk status.
struct ServiceError : std::runtime_error {
  ServiceError(Status s, const std::string& message)
      : std::runtime_error(message), status(s) {}
  Status status;
};

// Metric names travel on the wire and appear in logs and CLI output:
// restrict them to non-empty runs of printable non-space ASCII.
inline void ValidateMetricName(const std::string& name) {
  util::CheckData(!name.empty(), "metric name must be non-empty");
  util::CheckData(name.size() <= kMaxMetricNameLen,
                  "metric name exceeds 255 bytes");
  for (char c : name) {
    util::CheckData(c > 0x20 && c < 0x7f,
                    "metric name must be printable non-space ASCII");
  }
}

// A LIST prefix is a (possibly empty) leading fragment of a metric name,
// so it obeys the name alphabet but not the non-empty rule.
inline void ValidateMetricPrefix(const std::string& prefix) {
  util::CheckData(prefix.size() <= kMaxMetricNameLen,
                  "metric prefix exceeds 255 bytes");
  for (char c : prefix) {
    util::CheckData(c > 0x20 && c < 0x7f,
                    "metric prefix must be printable non-space ASCII");
  }
}

// --- framing ---------------------------------------------------------------

// Appends one length-prefixed frame carrying `payload` to `*out`.
inline void AppendFrame(std::vector<uint8_t>* out, const uint8_t* payload,
                        size_t size) {
  util::CheckArg(payload != nullptr && size >= 1 &&
                     size <= kMaxFramePayload,
                 "frame payload size out of range");
  if (payload == nullptr) return;  // unreachable; aids -Wnonnull analysis
  // Re-clamp after the throwing check: semantically a no-op, but it lets
  // the compiler prove the memcpy bound (silences -Wstringop-overflow).
  const size_t bounded = std::min<size_t>(size, kMaxFramePayload);
  const uint32_t len = static_cast<uint32_t>(bounded);
  const size_t offset = out->size();
  out->resize(offset + sizeof(uint32_t) + bounded);
  std::memcpy(out->data() + offset, &len, sizeof(uint32_t));
  std::memcpy(out->data() + offset + sizeof(uint32_t), payload, bounded);
}

inline void AppendFrame(std::vector<uint8_t>* out,
                        const std::vector<uint8_t>& payload) {
  AppendFrame(out, payload.data(), payload.size());
}

// Incremental frame decoder for a byte stream: Feed() whatever the socket
// produced, then pop complete payloads with Next(). Partial frames stay
// buffered across calls; an out-of-range length prefix throws
// std::runtime_error (the stream has lost sync -- the caller should close
// the connection, there is no way to resynchronize a corrupted
// length-prefixed stream).
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const uint8_t* data, size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
  }

  // Moves the next complete payload into `*payload` and returns true, or
  // returns false when the buffered bytes do not yet hold a full frame.
  bool Next(std::vector<uint8_t>* payload) {
    if (buffer_.size() - pos_ < sizeof(uint32_t)) return false;
    uint32_t len = 0;
    std::memcpy(&len, buffer_.data() + pos_, sizeof(uint32_t));
    util::CheckData(len >= 1 && len <= max_payload_,
                    "frame length prefix out of range");
    if (buffer_.size() - pos_ - sizeof(uint32_t) < len) return false;
    const uint8_t* begin = buffer_.data() + pos_ + sizeof(uint32_t);
    payload->assign(begin, begin + len);
    pos_ += sizeof(uint32_t) + len;
    // Reclaim consumed prefix once it dominates the buffer, so a
    // long-lived connection does not grow the buffer without bound.
    if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<ptrdiff_t>(pos_));
      pos_ = 0;
    }
    return true;
  }

  // Bytes buffered but not yet consumed (diagnostics and tests).
  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  // Not const: keeps the decoder movable (the client embeds one).
  uint32_t max_payload_;
  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;
};

// --- requests --------------------------------------------------------------

inline std::vector<uint8_t> EncodeRequest(const Request& request) {
  util::BinaryWriter writer;
  writer.Write<uint8_t>(static_cast<uint8_t>(request.op));
  switch (request.op) {
    case Opcode::kPing:
    case Opcode::kStats:
      break;
    case Opcode::kList:
      // v1 compatibility: the unpaged request is the empty body old
      // servers expect; the paged operands only exist in the v2 form.
      if (request.list_paged) {
        writer.WriteString(request.list_prefix);
        writer.Write<uint64_t>(request.list_offset);
        writer.Write<uint64_t>(request.list_limit);
      }
      break;
    case Opcode::kCreate:
      writer.WriteString(request.metric);
      writer.Write<uint8_t>(static_cast<uint8_t>(request.spec.kind));
      writer.Write<uint32_t>(request.spec.base.k_base);
      writer.Write<uint8_t>(
          static_cast<uint8_t>(request.spec.base.accuracy));
      writer.Write<uint64_t>(request.spec.base.n_hint);
      writer.Write<uint64_t>(request.spec.base.seed);
      writer.Write<uint32_t>(request.spec.num_shards);
      writer.Write<uint64_t>(request.spec.buffer_capacity);
      writer.Write<uint32_t>(request.spec.num_buckets);
      writer.Write<uint64_t>(request.spec.bucket_items);
      break;
    case Opcode::kAppend:
      writer.WriteString(request.metric);
      writer.WriteVector<double>(request.values);
      break;
    case Opcode::kFlush:
    case Opcode::kSnapshot:
    case Opcode::kDrop:
      writer.WriteString(request.metric);
      break;
    case Opcode::kRank:
    case Opcode::kQuantiles:
    case Opcode::kCdf:
      writer.WriteString(request.metric);
      writer.Write<uint8_t>(static_cast<uint8_t>(request.criterion));
      writer.WriteVector<double>(request.values);
      break;
  }
  return writer.Release();
}

inline Request ParseRequest(const std::vector<uint8_t>& payload) {
  util::BinaryReader reader(payload);
  const uint8_t op = reader.Read<uint8_t>();
  util::CheckData(op <= static_cast<uint8_t>(Opcode::kStats),
                  "unknown request opcode");
  Request request;
  request.op = static_cast<Opcode>(op);
  switch (request.op) {
    case Opcode::kPing:
    case Opcode::kStats:
      break;
    case Opcode::kList:
      // An empty body is a v1 full-listing request; any body is the v2
      // paged form (prefix | offset | limit).
      if (!reader.AtEnd()) {
        request.list_paged = true;
        request.list_prefix = reader.ReadString();
        ValidateMetricPrefix(request.list_prefix);
        request.list_offset = reader.Read<uint64_t>();
        request.list_limit = reader.Read<uint64_t>();
      }
      break;
    case Opcode::kCreate: {
      request.metric = reader.ReadString();
      ValidateMetricName(request.metric);
      const uint8_t kind = reader.Read<uint8_t>();
      util::CheckData(kind <= static_cast<uint8_t>(EngineKind::kWindowed),
                      "bad engine kind");
      request.spec.kind = static_cast<EngineKind>(kind);
      request.spec.base.k_base = reader.Read<uint32_t>();
      const uint8_t accuracy = reader.Read<uint8_t>();
      util::CheckData(accuracy <= 1, "bad rank-accuracy orientation");
      request.spec.base.accuracy = static_cast<RankAccuracy>(accuracy);
      request.spec.base.n_hint = reader.Read<uint64_t>();
      request.spec.base.seed = reader.Read<uint64_t>();
      request.spec.num_shards = reader.Read<uint32_t>();
      request.spec.buffer_capacity = reader.Read<uint64_t>();
      request.spec.num_buckets = reader.Read<uint32_t>();
      request.spec.bucket_items = reader.Read<uint64_t>();
      break;
    }
    case Opcode::kAppend:
      request.metric = reader.ReadString();
      ValidateMetricName(request.metric);
      request.values = reader.ReadVector<double>();
      break;
    case Opcode::kFlush:
    case Opcode::kSnapshot:
    case Opcode::kDrop:
      request.metric = reader.ReadString();
      ValidateMetricName(request.metric);
      break;
    case Opcode::kRank:
    case Opcode::kQuantiles:
    case Opcode::kCdf: {
      request.metric = reader.ReadString();
      ValidateMetricName(request.metric);
      const uint8_t criterion = reader.Read<uint8_t>();
      util::CheckData(criterion <= 1, "bad rank criterion");
      request.criterion = static_cast<Criterion>(criterion);
      request.values = reader.ReadVector<double>();
      break;
    }
  }
  util::CheckData(reader.AtEnd(), "trailing bytes in request");
  return request;
}

// --- responses -------------------------------------------------------------

inline void EncodeResponseBody(Opcode op, const Response& response,
                               util::BinaryWriter* writer_ptr) {
  util::BinaryWriter& writer = *writer_ptr;
  writer.Write<uint8_t>(static_cast<uint8_t>(response.status));
  if (response.status != Status::kOk) {
    writer.WriteString(response.error);
    return;
  }
  switch (op) {
    case Opcode::kPing:
      writer.Write<uint8_t>(response.protocol_version);
      break;
    case Opcode::kCreate:
    case Opcode::kDrop:
      break;
    case Opcode::kAppend:
    case Opcode::kFlush:
      writer.Write<uint64_t>(response.n);
      break;
    case Opcode::kRank:
      writer.WriteVector<uint64_t>(response.ranks);
      break;
    case Opcode::kQuantiles:
    case Opcode::kCdf:
      writer.WriteVector<double>(response.values);
      break;
    case Opcode::kSnapshot:
      writer.WriteVector<uint8_t>(response.blob);
      break;
    case Opcode::kList:
      // Paged responses lead with the pre-pagination match total; the v1
      // body stays byte-identical for unpaged requests.
      if (response.list_paged) writer.Write<uint64_t>(response.total);
      writer.Write<uint64_t>(response.names.size());
      for (const std::string& name : response.names) {
        writer.WriteString(name);
      }
      break;
    case Opcode::kStats:
      writer.Write<uint64_t>(response.stats.size());
      for (const auto& [key, value] : response.stats) {
        writer.WriteString(key);
        writer.Write<uint64_t>(value);
      }
      break;
  }
}

inline std::vector<uint8_t> EncodeResponse(Opcode op,
                                           const Response& response) {
  util::BinaryWriter writer;
  EncodeResponseBody(op, response, &writer);
  return writer.Release();
}

// Appends one length-prefixed response frame directly into `*out`,
// reusing its allocation: the length slot is reserved up front, the body
// is encoded in place behind it, and the prefix is patched afterwards.
// This is the server's hot-path encoder -- a reactor worker encodes every
// response of a delivery batch into one connection-owned output buffer
// instead of materializing a fresh vector per frame and copying it.
inline void AppendResponseFrame(Opcode op, const Response& response,
                                std::vector<uint8_t>* out) {
  const size_t frame_start = out->size();
  util::BinaryWriter writer(std::move(*out));
  writer.Write<uint32_t>(0);  // length placeholder, patched below
  EncodeResponseBody(op, response, &writer);
  std::vector<uint8_t> bytes = writer.Release();
  const size_t payload = bytes.size() - frame_start - sizeof(uint32_t);
  util::CheckArg(payload >= 1 && payload <= kMaxFramePayload,
                 "frame payload size out of range");
  const uint32_t len = static_cast<uint32_t>(payload);
  std::memcpy(bytes.data() + frame_start, &len, sizeof(uint32_t));
  *out = std::move(bytes);
}

// Parses a response to a request of opcode `op` (the client knows what it
// sent; the opcode selects the body layout). `paged_list` must mirror the
// request's list_paged flag: a paged LIST answer leads with the match
// total, the v1 answer does not, and only the requester knows which form
// it asked for.
inline Response ParseResponse(Opcode op, const std::vector<uint8_t>& payload,
                              bool paged_list = false) {
  util::BinaryReader reader(payload);
  const uint8_t status = reader.Read<uint8_t>();
  util::CheckData(status <= static_cast<uint8_t>(Status::kDeadlineExceeded),
                  "unknown response status");
  Response response;
  response.status = static_cast<Status>(status);
  if (response.status != Status::kOk) {
    response.error = reader.ReadString();
    util::CheckData(reader.AtEnd(), "trailing bytes in response");
    return response;
  }
  switch (op) {
    case Opcode::kPing:
      response.protocol_version = reader.Read<uint8_t>();
      break;
    case Opcode::kCreate:
    case Opcode::kDrop:
      break;
    case Opcode::kAppend:
    case Opcode::kFlush:
      response.n = reader.Read<uint64_t>();
      break;
    case Opcode::kRank:
      response.ranks = reader.ReadVector<uint64_t>();
      break;
    case Opcode::kQuantiles:
    case Opcode::kCdf:
      response.values = reader.ReadVector<double>();
      break;
    case Opcode::kSnapshot:
      response.blob = reader.ReadVector<uint8_t>();
      break;
    case Opcode::kList: {
      if (paged_list) {
        response.list_paged = true;
        response.total = reader.Read<uint64_t>();
      }
      const uint64_t count = reader.Read<uint64_t>();
      // Each name costs at least its u64 length prefix on the wire, so a
      // count beyond remaining/8 is corrupt before any allocation.
      util::CheckData(count <= reader.remaining() / sizeof(uint64_t),
                      "metric count exceeds payload");
      util::CheckData(!response.list_paged || count <= response.total,
                      "LIST page larger than its match total");
      response.names.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        response.names.push_back(reader.ReadString());
        ValidateMetricName(response.names.back());
      }
      break;
    }
    case Opcode::kStats: {
      const uint64_t count = reader.Read<uint64_t>();
      // Each counter costs at least its name's u64 length prefix plus
      // the u64 value, so bound the count before any allocation.
      util::CheckData(count <= reader.remaining() / (2 * sizeof(uint64_t)),
                      "stats count exceeds payload");
      response.stats.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        std::string key = reader.ReadString();
        util::CheckData(!key.empty() && key.size() <= kMaxMetricNameLen,
                        "bad stats counter name");
        const uint64_t value = reader.Read<uint64_t>();
        response.stats.emplace_back(std::move(key), value);
      }
      break;
    }
  }
  util::CheckData(reader.AtEnd(), "trailing bytes in response");
  return response;
}

}  // namespace service
}  // namespace req

#endif  // REQSKETCH_SERVICE_WIRE_PROTOCOL_H_
