// Versioned binary serialization for ReqSketch, for sketches of trivially
// copyable item types (the common numeric case). A serialized sketch can be
// shipped to another process and merged there, which is the
// distributed-aggregation scenario Theorem 3 / Appendix D is about.
//
// Layout (little-endian):
//   u32 magic | u8 version | u8 accuracy | u8 coin | u8 schedule
//   u32 k_base | u64 n | u64 n_bound | u64 n_hint | u64 seed | u8 fixed_n
//   u8 has_min | T min | u8 has_max | T max
//   u32 num_levels
//   per level: u64 state | u64 num_compactions | u64 count | T[count]
//
// Note: the PRNG is reseeded from the stored seed on deserialization; the
// sketch remains a valid summary with identical estimates, but subsequent
// coin flips are not bitwise-identical to the original object's (they are
// fresh independent randomness, which the analysis permits).
#ifndef REQSKETCH_CORE_REQ_SERDE_H_
#define REQSKETCH_CORE_REQ_SERDE_H_

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/req_sketch.h"
#include "util/serde.h"
#include "util/validation.h"

namespace req {

template <typename T, typename Compare>
struct ReqSerde {
  static_assert(std::is_trivially_copyable_v<T>,
                "ReqSerde supports trivially copyable item types");

  static constexpr uint32_t kMagic = 0x52455153;  // "REQS"
  static constexpr uint8_t kVersion = 1;

  static std::vector<uint8_t> Serialize(const ReqSketch<T, Compare>& sketch) {
    util::BinaryWriter writer;
    writer.Write<uint32_t>(kMagic);
    writer.Write<uint8_t>(kVersion);
    writer.Write<uint8_t>(static_cast<uint8_t>(sketch.config_.accuracy));
    writer.Write<uint8_t>(static_cast<uint8_t>(sketch.config_.coin));
    writer.Write<uint8_t>(static_cast<uint8_t>(sketch.config_.schedule));
    writer.Write<uint32_t>(sketch.config_.k_base);
    writer.Write<uint64_t>(sketch.n_);
    writer.Write<uint64_t>(sketch.n_bound_);
    writer.Write<uint64_t>(sketch.config_.n_hint);
    writer.Write<uint64_t>(sketch.config_.seed);
    writer.Write<uint8_t>(sketch.fixed_n_ ? 1 : 0);
    writer.Write<uint8_t>(sketch.min_item_.has_value() ? 1 : 0);
    if (sketch.min_item_) writer.Write<T>(*sketch.min_item_);
    writer.Write<uint8_t>(sketch.max_item_.has_value() ? 1 : 0);
    if (sketch.max_item_) writer.Write<T>(*sketch.max_item_);
    writer.Write<uint32_t>(static_cast<uint32_t>(sketch.levels_.size()));
    for (const auto& level : sketch.levels_) {
      writer.Write<uint64_t>(level.state());
      writer.Write<uint64_t>(level.num_compactions());
      writer.WriteVector<T>(level.items());
    }
    return writer.Release();
  }

  static ReqSketch<T, Compare> Deserialize(const std::vector<uint8_t>& bytes,
                                           Compare comp = Compare()) {
    util::BinaryReader reader(bytes);
    util::CheckData(reader.Read<uint32_t>() == kMagic,
                    "not a serialized REQ sketch (bad magic)");
    util::CheckData(reader.Read<uint8_t>() == kVersion,
                    "unsupported REQ sketch serialization version");
    ReqConfig config;
    const uint8_t accuracy = reader.Read<uint8_t>();
    const uint8_t coin = reader.Read<uint8_t>();
    const uint8_t schedule = reader.Read<uint8_t>();
    util::CheckData(accuracy <= 1 && coin <= 1 && schedule <= 2,
                    "corrupt REQ sketch: bad enum value");
    config.accuracy = static_cast<RankAccuracy>(accuracy);
    config.coin = static_cast<CoinMode>(coin);
    config.schedule = static_cast<SchedulePolicy>(schedule);
    config.k_base = reader.Read<uint32_t>();
    // Validate before any allocation sized by these fields.
    util::CheckData(config.k_base >= params::kMinK &&
                        config.k_base % 2 == 0 &&
                        config.k_base <= (uint32_t{1} << 24),
                    "corrupt REQ sketch: implausible k_base");
    const uint64_t n = reader.Read<uint64_t>();
    const uint64_t n_bound = reader.Read<uint64_t>();
    config.n_hint = reader.Read<uint64_t>();
    config.seed = reader.Read<uint64_t>();
    const bool fixed_n = reader.Read<uint8_t>() != 0;
    // Validate before any allocation sized by these fields. (A fixed-n
    // sketch may legitimately have n > n_bound: it degrades gracefully
    // when the hint was too small.)
    util::CheckData(n_bound <= params::kMaxN &&
                        config.n_hint <= params::kMaxN &&
                        (fixed_n || n <= n_bound),
                    "corrupt REQ sketch: implausible size bounds");

    ReqSketch<T, Compare> sketch(config, comp);
    sketch.n_ = n;
    sketch.n_bound_ = n_bound;
    sketch.fixed_n_ = fixed_n;
    sketch.RecomputeGeometry();

    if (reader.Read<uint8_t>() != 0) sketch.min_item_ = reader.Read<T>();
    if (reader.Read<uint8_t>() != 0) sketch.max_item_ = reader.Read<T>();

    const uint32_t num_levels = reader.Read<uint32_t>();
    util::CheckData(num_levels >= 1 && num_levels <= 64,
                    "corrupt REQ sketch: implausible level count");
    // Restore() recomputes each level's sorted-prefix bookkeeping from the
    // payload, and the freshly constructed sketch starts with a cold
    // sorted-view cache, so the deserialized object's query hot paths are
    // in the same state as the original's after its last update.
    sketch.levels_.clear();
    for (uint32_t h = 0; h < num_levels; ++h) {
      sketch.levels_.emplace_back(sketch.MakeLevel());
      const uint64_t state = reader.Read<uint64_t>();
      const uint64_t num_compactions = reader.Read<uint64_t>();
      std::vector<T> items = reader.ReadVector<T>();
      sketch.levels_.back().Restore(std::move(items), state,
                                    num_compactions);
    }
    util::CheckData(sketch.TotalWeight() == n,
                    "corrupt REQ sketch: weight does not match n");
    return sketch;
  }
};

// Convenience wrappers.
template <typename T, typename Compare>
std::vector<uint8_t> SerializeSketch(const ReqSketch<T, Compare>& sketch) {
  return ReqSerde<T, Compare>::Serialize(sketch);
}

template <typename T, typename Compare = std::less<T>>
ReqSketch<T, Compare> DeserializeSketch(const std::vector<uint8_t>& bytes,
                                        Compare comp = Compare()) {
  return ReqSerde<T, Compare>::Deserialize(bytes, comp);
}

}  // namespace req

#endif  // REQSKETCH_CORE_REQ_SERDE_H_
