// Versioned binary serialization for ReqSketch, for sketches of trivially
// copyable item types (the common numeric case). A serialized sketch can be
// shipped to another process and merged there, which is the
// distributed-aggregation scenario Theorem 3 / Appendix D is about.
//
// Layout (little-endian):
//   u32 magic | u8 version | u8 accuracy | u8 coin | u8 schedule
//   u32 k_base | u64 n | u64 n_bound | u64 n_hint | u64 seed | u8 fixed_n
//   u8 has_min | T min | u8 has_max | T max
//   u32 num_levels
//   per level: u64 state | u64 num_compactions | u64 count | T[count]
//   v2 only: u64 rng_state[4]
//
// Version 2 (current) appends the exact Xoshiro256 state, so a restored
// sketch continues BIT-IDENTICALLY to the original under the same future
// updates -- the property the durability layer's checkpoint-then-replay
// contract (src/persist/) is built on. Version 1 streams (no trailing
// state) are still accepted: the PRNG is reseeded from the stored seed,
// which keeps the sketch a valid summary with identical estimates but
// makes subsequent coin flips fresh independent randomness rather than a
// bitwise continuation (the analysis permits either).
//
// Validation guarantees: Deserialize treats the byte stream as untrusted.
// Every field is checked before it is used to size an allocation or index
// anything -- magic/version, enum ranges, k_base and size-bound
// plausibility, level count, per-level item counts (against both the
// remaining payload bytes and the level capacity), min/max presence
// consistent with n (n > 0 requires both extremes, n == 0 forbids them,
// so GetQuantile(0)/GetQuantile(1) can never dereference an empty
// optional), no NaN items or extremes for floating-point T, every stored
// item inside [min, max], and total stored weight equal to n. A corrupt or
// truncated input of any shape either round-trips to a healthy sketch or
// throws std::runtime_error -- it never reaches undefined behavior. The
// corrupt-input fuzz suite (tests/serde_corruption_test.cc) bit-flips and
// truncates serialized sketches to hold this line.
#ifndef REQSKETCH_CORE_REQ_SERDE_H_
#define REQSKETCH_CORE_REQ_SERDE_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/req_sketch.h"
#include "util/serde.h"
#include "util/validation.h"

namespace req {

template <typename T, typename Compare>
struct ReqSerde {
  static_assert(std::is_trivially_copyable_v<T>,
                "ReqSerde supports trivially copyable item types");

  static constexpr uint32_t kMagic = 0x52455153;  // "REQS"
  static constexpr uint8_t kVersion = 2;
  static constexpr uint8_t kMinVersion = 1;

  static std::vector<uint8_t> Serialize(const ReqSketch<T, Compare>& sketch) {
    util::BinaryWriter writer;
    writer.Write<uint32_t>(kMagic);
    writer.Write<uint8_t>(kVersion);
    writer.Write<uint8_t>(static_cast<uint8_t>(sketch.config_.accuracy));
    writer.Write<uint8_t>(static_cast<uint8_t>(sketch.config_.coin));
    writer.Write<uint8_t>(static_cast<uint8_t>(sketch.config_.schedule));
    writer.Write<uint32_t>(sketch.config_.k_base);
    writer.Write<uint64_t>(sketch.n_);
    writer.Write<uint64_t>(sketch.n_bound_);
    writer.Write<uint64_t>(sketch.config_.n_hint);
    writer.Write<uint64_t>(sketch.config_.seed);
    writer.Write<uint8_t>(sketch.fixed_n_ ? 1 : 0);
    writer.Write<uint8_t>(sketch.min_item_.has_value() ? 1 : 0);
    if (sketch.min_item_) writer.Write<T>(*sketch.min_item_);
    writer.Write<uint8_t>(sketch.max_item_.has_value() ? 1 : 0);
    if (sketch.max_item_) writer.Write<T>(*sketch.max_item_);
    writer.Write<uint32_t>(static_cast<uint32_t>(sketch.levels_.size()));
    for (const auto& level : sketch.levels_) {
      writer.Write<uint64_t>(level.state());
      writer.Write<uint64_t>(level.num_compactions());
      // One contiguous copy per level, straight out of the shared arena.
      const ItemSpan<T> items = level.items();
      writer.WriteArray<T>(items.data(), items.size());
    }
    for (uint64_t word : sketch.rng_.state()) writer.Write<uint64_t>(word);
    return writer.Release();
  }

  static ReqSketch<T, Compare> Deserialize(const std::vector<uint8_t>& bytes,
                                           Compare comp = Compare()) {
    util::BinaryReader reader(bytes);
    util::CheckData(reader.Read<uint32_t>() == kMagic,
                    "not a serialized REQ sketch (bad magic)");
    const uint8_t version = reader.Read<uint8_t>();
    util::CheckData(version >= kMinVersion && version <= kVersion,
                    "unsupported REQ sketch serialization version");
    ReqConfig config;
    const uint8_t accuracy = reader.Read<uint8_t>();
    const uint8_t coin = reader.Read<uint8_t>();
    const uint8_t schedule = reader.Read<uint8_t>();
    util::CheckData(accuracy <= 1 && coin <= 1 && schedule <= 2,
                    "corrupt REQ sketch: bad enum value");
    config.accuracy = static_cast<RankAccuracy>(accuracy);
    config.coin = static_cast<CoinMode>(coin);
    config.schedule = static_cast<SchedulePolicy>(schedule);
    config.k_base = reader.Read<uint32_t>();
    // Validate before any allocation sized by these fields.
    util::CheckData(config.k_base >= params::kMinK &&
                        config.k_base % 2 == 0 &&
                        config.k_base <= (uint32_t{1} << 24),
                    "corrupt REQ sketch: implausible k_base");
    const uint64_t n = reader.Read<uint64_t>();
    const uint64_t n_bound = reader.Read<uint64_t>();
    config.n_hint = reader.Read<uint64_t>();
    config.seed = reader.Read<uint64_t>();
    const bool fixed_n = reader.Read<uint8_t>() != 0;
    // Validate before any allocation sized by these fields. (A fixed-n
    // sketch may legitimately have n > n_bound: it degrades gracefully
    // when the hint was too small.)
    util::CheckData(n_bound <= params::kMaxN &&
                        config.n_hint <= params::kMaxN &&
                        (fixed_n || n <= n_bound),
                    "corrupt REQ sketch: implausible size bounds");

    ReqSketch<T, Compare> sketch(config, comp);
    sketch.n_ = n;
    sketch.n_bound_ = n_bound;
    sketch.fixed_n_ = fixed_n;
    sketch.RecomputeGeometry();

    const uint8_t has_min = reader.Read<uint8_t>();
    util::CheckData(has_min <= 1, "corrupt REQ sketch: bad min-presence flag");
    if (has_min != 0) sketch.min_item_ = reader.Read<T>();
    const uint8_t has_max = reader.Read<uint8_t>();
    util::CheckData(has_max <= 1, "corrupt REQ sketch: bad max-presence flag");
    if (has_max != 0) sketch.max_item_ = reader.Read<T>();
    // The extremes must be present exactly when the sketch is non-empty:
    // GetQuantile(0.0)/GetQuantile(1.0) (and the merge min/max fold)
    // dereference them whenever n > 0, so a stream with n > 0 but absent
    // extremes would be a latent dereference of an empty optional.
    util::CheckData((n > 0) == (has_min != 0) && (n > 0) == (has_max != 0),
                    "corrupt REQ sketch: min/max presence inconsistent "
                    "with n");
    if constexpr (std::is_floating_point_v<T>) {
      util::CheckData(!(has_min && std::isnan(*sketch.min_item_)) &&
                          !(has_max && std::isnan(*sketch.max_item_)),
                      "corrupt REQ sketch: NaN extreme");
    }
    util::CheckData(n == 0 || !comp(*sketch.max_item_, *sketch.min_item_),
                    "corrupt REQ sketch: min exceeds max");

    const uint32_t num_levels = reader.Read<uint32_t>();
    util::CheckData(num_levels >= 1 && num_levels <= 64,
                    "corrupt REQ sketch: implausible level count");
    // Restore() recomputes each level's sorted-prefix bookkeeping from the
    // payload, and the freshly constructed sketch starts with a cold
    // sorted-view cache, so the deserialized object's query hot paths are
    // in the same state as the original's after its last update. The
    // arena's slots are torn down with the scaffolding level stack.
    sketch.levels_.clear();
    sketch.arena_.TruncateSlots(0);
    for (uint32_t h = 0; h < num_levels; ++h) {
      sketch.levels_.emplace_back(sketch.MakeLevel());
      const uint64_t state = reader.Read<uint64_t>();
      const uint64_t num_compactions = reader.Read<uint64_t>();
      // Check the declared item count against both the remaining payload
      // bytes and the structural invariant (a quiescent level never holds
      // more than its capacity) BEFORE ReadArray sizes an allocation by it.
      const uint64_t count = reader.Read<uint64_t>();
      util::CheckData(count <= reader.remaining() / sizeof(T),
                      "corrupt REQ sketch: level item count exceeds "
                      "payload");
      util::CheckData(count <= sketch.level_capacity(),
                      "corrupt REQ sketch: level item count exceeds "
                      "capacity");
      // An empty sketch stores nothing; without this, the range check
      // below would dereference the (absent) extremes.
      util::CheckData(n > 0 || count == 0,
                      "corrupt REQ sketch: items in an empty sketch");
      std::vector<T> items = reader.ReadArray<T>(count);
      for (const T& item : items) {
        if constexpr (std::is_floating_point_v<T>) {
          util::CheckData(!std::isnan(item), "corrupt REQ sketch: NaN item");
        }
        util::CheckData(!comp(item, *sketch.min_item_) &&
                            !comp(*sketch.max_item_, item),
                        "corrupt REQ sketch: item outside [min, max]");
      }
      sketch.levels_.back().Restore(std::move(items), state,
                                    num_compactions);
    }
    util::CheckData(sketch.TotalWeight() == n,
                    "corrupt REQ sketch: weight does not match n");
    if (version >= 2) {
      // Exact PRNG state: the restored sketch's future coin flips are
      // bitwise-identical to the original's (checkpoint-replay equality).
      // Any 256-bit value is a valid generator state, so no range check.
      std::array<uint64_t, 4> rng_state;
      for (uint64_t& word : rng_state) word = reader.Read<uint64_t>();
      sketch.rng_.set_state(rng_state);
    }
    // The payload length is fully determined by the declared counts, so a
    // well-formed stream ends exactly here; trailing bytes mean a count
    // was corrupted downward (silent data loss) and must be rejected.
    util::CheckData(reader.AtEnd(), "corrupt REQ sketch: trailing bytes");
    return sketch;
  }
};

// Convenience wrappers.
template <typename T, typename Compare>
std::vector<uint8_t> SerializeSketch(const ReqSketch<T, Compare>& sketch) {
  return ReqSerde<T, Compare>::Serialize(sketch);
}

template <typename T, typename Compare = std::less<T>>
ReqSketch<T, Compare> DeserializeSketch(const std::vector<uint8_t>& bytes,
                                        Compare comp = Compare()) {
  return ReqSerde<T, Compare>::Deserialize(bytes, comp);
}

}  // namespace req

#endif  // REQSKETCH_CORE_REQ_SERDE_H_
