// Fluent builder for ReqSketch, including accuracy-targeted sizing:
// instead of picking k_base by hand, request a target relative error eps
// at confidence 1 - delta and let the builder derive k_base from the
// calibrated error model (E2/E7 in EXPERIMENTS.md: the empirical error at
// the accurate end is zero-mean Gaussian-like with sigma ~ c / k_base,
// c ~= 0.10 measured; we size with c = 0.20 for a 2x safety margin, still
// ~5x leaner than the worst-case constant in RelativeStdErr()).
#ifndef REQSKETCH_CORE_REQ_BUILDER_H_
#define REQSKETCH_CORE_REQ_BUILDER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/req_common.h"
#include "core/req_sketch.h"
#include "util/validation.h"

namespace req {

class ReqSketchBuilder {
 public:
  ReqSketchBuilder& SetKBase(uint32_t k_base) {
    config_.k_base = k_base;
    k_explicit_ = true;
    return *this;
  }

  // Derives k_base so that Pr[|Err(y)| > eps * R*(y)] <~ delta for a fixed
  // item y (single-quantile guarantee, Theorem 1 with calibrated
  // constants). For the all-quantiles guarantee (Corollary 1), pass
  // eps/3 and delta scaled down by the grid size, or simply
  // SetAllQuantiles(true).
  ReqSketchBuilder& SetAccuracyTarget(double eps, double delta) {
    util::CheckArg(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    util::CheckArg(delta > 0.0 && delta <= 0.5, "delta must be in (0, 0.5]");
    eps_ = eps;
    delta_ = delta;
    k_explicit_ = false;
    return *this;
  }

  // Corollary 1 mode: boost the accuracy target so that all ranks are
  // simultaneously within eps with probability 1 - delta.
  ReqSketchBuilder& SetAllQuantiles(bool all_quantiles) {
    all_quantiles_ = all_quantiles;
    return *this;
  }

  ReqSketchBuilder& SetHighRankAccuracy() {
    config_.accuracy = RankAccuracy::kHighRanks;
    return *this;
  }
  ReqSketchBuilder& SetLowRankAccuracy() {
    config_.accuracy = RankAccuracy::kLowRanks;
    return *this;
  }

  ReqSketchBuilder& SetNHint(uint64_t n_hint) {
    config_.n_hint = n_hint;
    return *this;
  }

  ReqSketchBuilder& SetSeed(uint64_t seed) {
    config_.seed = seed;
    return *this;
  }

  ReqSketchBuilder& SetDeterministic(bool deterministic) {
    config_.coin =
        deterministic ? CoinMode::kDeterministic : CoinMode::kRandom;
    return *this;
  }

  // The config that Build() will use (k_base resolved).
  ReqConfig ResolveConfig() const {
    ReqConfig config = config_;
    if (!k_explicit_) {
      config.k_base = DeriveKBase();
    }
    return config;
  }

  template <typename T, typename Compare = std::less<T>>
  ReqSketch<T, Compare> Build(Compare comp = Compare()) const {
    return ReqSketch<T, Compare>(ResolveConfig(), comp);
  }

 private:
  // Calibrated sizing: sigma ~ c / k with c = 0.20 (conservative 2x over
  // the measured 0.10); the Gaussian tail needs z(delta) sigmas, with
  // z ~ sqrt(2 ln(1/delta)). All-quantiles mode boosts eps -> eps/3 and
  // charges a log-size grid to delta (Corollary 1's recipe).
  uint32_t DeriveKBase() const {
    double eps = eps_;
    double delta = delta_;
    if (all_quantiles_) {
      eps /= 3.0;
      delta /= 64.0;  // ~ |eps-net| for practical n; Corollary 1
    }
    const double z = std::sqrt(2.0 * std::log(1.0 / delta));
    const double k = 0.20 * z / eps;
    uint32_t k_base = static_cast<uint32_t>(std::ceil(k));
    k_base += k_base % 2;  // force even
    return std::clamp(k_base, params::kMinK, uint32_t{1} << 20);
  }

  ReqConfig config_;
  double eps_ = 0.01;
  double delta_ = 0.01;
  bool k_explicit_ = true;
  bool all_quantiles_ = false;
};

}  // namespace req

#endif  // REQSKETCH_CORE_REQ_BUILDER_H_
