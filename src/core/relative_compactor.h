// The relative-compactor (Algorithm 1 and Figures 1-2 of the paper).
//
// A relative-compactor is a buffer of capacity B = 2 * k * num_sections that
// ingests a stream of items and, whenever full, performs a *compaction
// operation*: it sorts the buffer, selects the L_C most-compactible items
// (the largest in LRA orientation, the smallest in HRA orientation), removes
// them, and promotes every other one of them -- even- or odd-indexed with
// equal probability (Observation 4) -- to the caller, which feeds them to
// the next level with doubled weight.
//
// The number of compacted items follows the derandomized exponential
// schedule of Section 2.1: during the (C+1)-st compaction,
//     L_C = (z(C) + 1) * k,
// where z(C) is the number of trailing ones in the binary representation of
// the compaction state C. Section j (of size k, numbered from the
// compactible end) therefore participates in every 2^(j-1)-th compaction,
// and the B/2 items on the protected side are never compacted -- the source
// of the multiplicative error guarantee. Fact 5 (between two compactions of
// exactly j sections there is one of > j sections) follows from the
// trailing-ones schedule and is exercised directly by the unit tests.
//
// For mergeability (Appendix D), the state C is public: Algorithm 3 combines
// the states of two sketches with bitwise OR, and "special" compactions
// (parameter regrowth) compact everything above the protected half.
//
// Hot-path structure: the buffer maintains a *sorted-prefix invariant* --
// items [0, sorted_prefix_) are sorted ascending, everything after is the
// unsorted insert tail. Every compaction leaves the surviving buffer fully
// sorted, so between compactions the tail is only the items inserted since.
// Sort() therefore sorts just the tail and runs std::inplace_merge
// (O(u log u + B) for tail length u instead of O(B log B)), and CountRank
// binary-searches the prefix and linearly scans only the tail.
//
// Storage: items live in a LevelArena slot, NOT in a per-compactor
// std::vector. A standalone compactor (unit tests, ablation harnesses)
// owns a private single-slot arena; inside a ReqSketch every level is a
// slot of the sketch's shared arena, so the whole retained set is one
// contiguous allocation (see core/level_arena.h). The compactor's logic is
// storage-agnostic: all operations address the arena through (arena, slot).
//
// Change tracking: version() is a monotone counter bumped by every
// content mutation (inserts, compactions, clear, restore). The sketch's
// incremental sorted-view maintenance uses it to re-sort only the levels
// that actually changed since the last view build. Sort() does NOT bump it:
// sorting permutes equal-keyed storage order but never the summarized
// multiset.
#ifndef REQSKETCH_CORE_RELATIVE_COMPACTOR_H_
#define REQSKETCH_CORE_RELATIVE_COMPACTOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "core/level_arena.h"
#include "core/req_common.h"
#include "util/bits.h"
#include "util/random.h"
#include "util/validation.h"

namespace req {

template <typename T, typename Compare = std::less<T>>
class RelativeCompactor {
 public:
  // Standalone form: the compactor owns a private single-slot arena.
  RelativeCompactor(uint32_t section_size, uint32_t num_sections,
                    RankAccuracy accuracy, SchedulePolicy schedule,
                    CoinMode coin, Compare comp = Compare())
      : RelativeCompactor(nullptr, section_size, num_sections, accuracy,
                          schedule, coin, std::move(comp)) {}

  // Arena-backed form: appends a slot to `arena` (which must outlive the
  // compactor; the owner re-points it on copies/moves via RebindArena).
  // Passing nullptr selects the standalone form.
  RelativeCompactor(LevelArena<T>* arena, uint32_t section_size,
                    uint32_t num_sections, RankAccuracy accuracy,
                    SchedulePolicy schedule, CoinMode coin,
                    Compare comp = Compare())
      : comp_(std::move(comp)),
        section_size_(section_size),
        num_sections_(num_sections),
        accuracy_(accuracy),
        schedule_(schedule),
        coin_(coin) {
    util::CheckArg(section_size >= 2 && section_size % 2 == 0,
                   "section size must be even and >= 2");
    util::CheckArg(num_sections >= 2, "num_sections must be >= 2");
    if (arena == nullptr) {
      own_arena_ = std::make_unique<LevelArena<T>>();
      arena = own_arena_.get();
    }
    arena_ = arena;
    slot_ = arena_->AddSlot(capacity());
  }

  // A standalone compactor deep-copies its private arena. An arena-backed
  // one copies the binding only -- its owner copies the shared arena
  // wholesale and rebinds every level (see ReqSketch's copy constructor).
  RelativeCompactor(const RelativeCompactor& other)
      : comp_(other.comp_),
        own_arena_(other.own_arena_
                       ? std::make_unique<LevelArena<T>>(*other.own_arena_)
                       : nullptr),
        arena_(own_arena_ ? own_arena_.get() : other.arena_),
        slot_(other.slot_),
        section_size_(other.section_size_),
        num_sections_(other.num_sections_),
        accuracy_(other.accuracy_),
        schedule_(other.schedule_),
        coin_(other.coin_),
        state_(other.state_),
        num_compactions_(other.num_compactions_),
        version_(other.version_),
        sorted_prefix_(other.sorted_prefix_) {}

  RelativeCompactor(RelativeCompactor&& other) noexcept
      : comp_(std::move(other.comp_)),
        own_arena_(std::move(other.own_arena_)),
        arena_(own_arena_ ? own_arena_.get() : other.arena_),
        slot_(other.slot_),
        section_size_(other.section_size_),
        num_sections_(other.num_sections_),
        accuracy_(other.accuracy_),
        schedule_(other.schedule_),
        coin_(other.coin_),
        state_(other.state_),
        num_compactions_(other.num_compactions_),
        version_(other.version_),
        sorted_prefix_(other.sorted_prefix_) {}

  RelativeCompactor& operator=(const RelativeCompactor& other) {
    if (this == &other) return *this;
    RelativeCompactor copy(other);
    *this = std::move(copy);
    return *this;
  }

  RelativeCompactor& operator=(RelativeCompactor&& other) noexcept {
    comp_ = std::move(other.comp_);
    own_arena_ = std::move(other.own_arena_);
    arena_ = own_arena_ ? own_arena_.get() : other.arena_;
    slot_ = other.slot_;
    section_size_ = other.section_size_;
    num_sections_ = other.num_sections_;
    accuracy_ = other.accuracy_;
    schedule_ = other.schedule_;
    coin_ = other.coin_;
    state_ = other.state_;
    num_compactions_ = other.num_compactions_;
    version_ = other.version_;
    sorted_prefix_ = other.sorted_prefix_;
    return *this;
  }

  // Re-points an arena-backed compactor at (a copy of) its storage; called
  // by the owning sketch after copying/moving the shared arena. No-op for
  // standalone compactors (they carry their arena with them).
  void RebindArena(LevelArena<T>* arena) {
    if (!own_arena_) arena_ = arena;
  }

  // Deep-copies this compactor into a slot of `arena` (used by the merge
  // path to special-compact a scratch copy of a source sketch's levels
  // without touching the source's storage).
  RelativeCompactor CloneInto(LevelArena<T>* arena) const {
    RelativeCompactor clone(arena, section_size_, num_sections_, accuracy_,
                            schedule_, coin_, comp_);
    arena->Reserve(clone.slot_, size());
    arena->Append(clone.slot_, begin(), end());
    clone.state_ = state_;
    clone.num_compactions_ = num_compactions_;
    clone.version_ = version_;
    clone.sorted_prefix_ = sorted_prefix_;
    return clone;
  }

  // --- accessors -----------------------------------------------------------

  uint32_t section_size() const { return section_size_; }
  uint32_t num_sections() const { return num_sections_; }
  uint32_t capacity() const {
    return params::Capacity(section_size_, num_sections_);
  }
  size_t size() const { return arena_->Size(slot_); }
  bool empty() const { return size() == 0; }
  bool IsFull() const { return size() >= capacity(); }

  // Compaction-schedule state C (number of compactions in streaming use;
  // after merges it is the bitwise OR of the constituents' states).
  uint64_t state() const { return state_; }
  void set_state(uint64_t state) { state_ = state; }
  // Appendix D merge rule: the merged state is the bitwise OR (Fact 18/19).
  void OrState(uint64_t other_state) { state_ |= other_state; }

  uint64_t num_compactions() const { return num_compactions_; }

  // Monotone content-change counter (see header comment).
  uint64_t version() const { return version_; }

  ItemSpan<T> items() const { return ItemSpan<T>(begin(), size()); }

  // --- updates -------------------------------------------------------------

  void Insert(const T& item) {
    arena_->PushBack(slot_, item);
    ExtendSortedPrefix();
    ++version_;
  }
  void Insert(T&& item) {
    arena_->PushBack(slot_, std::move(item));
    ExtendSortedPrefix();
    ++version_;
  }

  // Bulk insert used by the sketch's batch update: appends `count` items
  // in order. Equivalent to `count` scalar Insert calls (including the
  // sorted-prefix bookkeeping) minus the per-call overhead.
  void Insert(const T* data, size_t count) {
    arena_->Append(slot_, data, data + count);
    ExtendSortedPrefix();
    ++version_;
  }

  // Grows the slot's capacity (never shrinks, never changes contents);
  // used by merges to size a level once up front.
  void Reserve(size_t total) { arena_->Reserve(slot_, total); }

  // Bulk insert used by merge: appends all items from a sibling buffer.
  void InsertAll(ItemSpan<T> other_items) {
    if (other_items.empty()) return;
    arena_->Append(slot_, other_items.begin(), other_items.end());
    ExtendSortedPrefix();
    ++version_;
  }

  // Move-appending overload used for promotion during compaction cascades:
  // the source keeps its allocation (the caller reuses it as a scratch
  // buffer) but its items are moved, not copied.
  void InsertAll(std::vector<T>&& other_items) {
    if (other_items.empty()) return;
    arena_->Append(slot_,
                   std::make_move_iterator(other_items.begin()),
                   std::make_move_iterator(other_items.end()));
    other_items.clear();
    ExtendSortedPrefix();
    ++version_;
  }

  // Drops all contents and schedule state but keeps the slot's region:
  // the cheap-retirement primitive behind ReqSketch::Reset(), which the
  // sliding-window wrapper calls every bucket rotation.
  void Clear() {
    arena_->ClearSlot(slot_);
    sorted_prefix_ = 0;
    state_ = 0;
    num_compactions_ = 0;
    ++version_;
  }

  // Reconfigures the section geometry after the sketch's global parameters
  // regrow (N -> N^2 recomputes k and B; Appendix D.1). Existing items and
  // state are preserved; the caller is responsible for having run the
  // special compaction first.
  void SetGeometry(uint32_t section_size, uint32_t num_sections) {
    util::CheckArg(section_size >= 2 && section_size % 2 == 0,
                   "section size must be even and >= 2");
    util::CheckArg(num_sections >= 2, "num_sections must be >= 2");
    section_size_ = section_size;
    num_sections_ = num_sections;
  }

  // --- compaction ----------------------------------------------------------

  // Returns the number of items the schedule will compact next: the paper's
  // L_C = (z(C)+1)*k, clamped to half the capacity (the clamp is the
  // "L <= B/2 always holds" property; it only binds defensively after
  // merges inflate the state).
  uint32_t NextCompactionWidth() const {
    uint32_t sections_involved;
    switch (schedule_) {
      case SchedulePolicy::kExponential:
        sections_involved = static_cast<uint32_t>(
            util::TrailingOnes(state_)) + 1;
        break;
      case SchedulePolicy::kUniform:
        sections_involved = num_sections_;
        break;
      case SchedulePolicy::kSingleSection:
        sections_involved = 1;
        break;
      default:
        sections_involved = 1;
    }
    sections_involved = std::min(sections_involved, num_sections_);
    return sections_involved * section_size_;
  }

  // Performs one scheduled compaction (Lines 5-10 of Algorithm 1, extended
  // per Algorithm 3 to also consume any items beyond the nominal capacity).
  // Fills `*promoted` (cleared first) with the items to be fed to the next
  // level; the caller owns the vector and can reuse it across compactions
  // as a scratch buffer. Leaves `*promoted` empty (and the schedule state
  // untouched) when there is nothing to compact; callers invoke it only
  // when size() >= capacity().
  void Compact(util::Xoshiro256& rng, std::vector<T>* promoted) {
    promoted->clear();
    const uint32_t width = NextCompactionWidth();
    // Everything beyond the nominal capacity B is "extra" (can only appear
    // during merges) and is always included in the compaction.
    const size_t extras = size() > capacity() ? size() - capacity() : 0;
    size_t compact_count =
        std::min(size(), static_cast<size_t>(width) + extras);
    // Keep the compacted range even so exactly half of it is promoted and
    // total weight is conserved (the estimator then satisfies
    // RankEstimate(max) == n exactly).
    compact_count &= ~size_t{1};
    if (compact_count < 2) return;
    CompactRange(compact_count, rng, promoted);
    state_ += 1;
    ++num_compactions_;
  }

  // Value-returning convenience wrapper (tests and simple callers).
  std::vector<T> Compact(util::Xoshiro256& rng) {
    std::vector<T> promoted;
    Compact(rng, &promoted);
    return promoted;
  }

  // "Special" compaction used when parameters regrow and during merges
  // (Algorithm 3, SpecialCompaction): compacts every item above the
  // protected half, leaving at most capacity()/2 items. Leaves `*promoted`
  // empty if the buffer already holds <= capacity()/2 items.
  void SpecialCompact(util::Xoshiro256& rng, std::vector<T>* promoted) {
    promoted->clear();
    const size_t protect = capacity() / 2;
    if (size() <= protect) return;
    const size_t compact_count = (size() - protect) & ~size_t{1};
    if (compact_count < 2) return;
    CompactRange(compact_count, rng, promoted);
    state_ += 1;
    ++num_compactions_;
  }

  std::vector<T> SpecialCompact(util::Xoshiro256& rng) {
    std::vector<T> promoted;
    SpecialCompact(rng, &promoted);
    return promoted;
  }

  // --- queries -------------------------------------------------------------

  // Number of stored items <= y (inclusive) or < y (exclusive), unweighted.
  // Binary search over the sorted prefix plus a linear pass over the insert
  // tail: O(log B + u) instead of O(B).
  uint64_t CountRank(const T& y, Criterion criterion) const {
    const T* first = begin();
    const T* prefix_end = first + sorted_prefix_;
    const T* last = end();
    uint64_t count;
    if (criterion == Criterion::kInclusive) {
      count = static_cast<uint64_t>(
          std::upper_bound(first, prefix_end, y, comp_) - first);
      for (const T* it = prefix_end; it != last; ++it) {
        if (!comp_(y, *it)) ++count;  // x <= y
      }
    } else {
      count = static_cast<uint64_t>(
          std::lower_bound(first, prefix_end, y, comp_) - first);
      for (const T* it = prefix_end; it != last; ++it) {
        if (comp_(*it, y)) ++count;  // x < y
      }
    }
    return count;
  }

  // Restores buffer contents and schedule state; used by deserialization
  // (core/req_serde.h) only. The sorted prefix is recomputed from the data.
  void Restore(std::vector<T> items, uint64_t state,
               uint64_t num_compactions) {
    arena_->ClearSlot(slot_);
    arena_->Reserve(slot_, items.size());
    arena_->Append(slot_, std::make_move_iterator(items.begin()),
                   std::make_move_iterator(items.end()));
    sorted_prefix_ = static_cast<size_t>(
        std::is_sorted_until(begin(), end(), comp_) - begin());
    state_ = state;
    num_compactions_ = num_compactions;
    ++version_;
  }

  // Ensures the buffer is sorted ascending (queries that need order call
  // this). Merge-based: only the insert tail is sorted from scratch, then
  // merged with the already-sorted prefix -- O(u log u + B) for tail
  // length u instead of the O(B log B) full sort.
  void Sort() {
    if (sorted_prefix_ == size()) return;
    T* first = begin_mutable();
    T* mid = first + sorted_prefix_;
    T* last = first + size();
    std::sort(mid, last, comp_);
    if (sorted_prefix_ > 0) {
      std::inplace_merge(first, mid, last, comp_);
    }
    sorted_prefix_ = size();
  }
  bool sorted() const { return sorted_prefix_ == size(); }
  // Length of the sorted prefix (exposed for tests, diagnostics, and the
  // sorted-view builder's copy-and-merge fast path).
  size_t sorted_prefix() const { return sorted_prefix_; }

 private:
  const T* begin() const { return arena_->Data(slot_); }
  const T* end() const { return arena_->Data(slot_) + size(); }
  T* begin_mutable() { return arena_->Data(slot_); }

  // Advances sorted_prefix_ past any newly appended items that continue the
  // ascending order. When the prefix is stalled short of the end this
  // compares one adjacent pair and stops, so it is O(1) amortized; its
  // purpose is to keep already-ordered input (sorted streams, promoted
  // runs landing in an empty or fully sorted buffer) free to sort later.
  void ExtendSortedPrefix() {
    const T* data = begin();
    while (sorted_prefix_ < size() &&
           (sorted_prefix_ == 0 ||
            !comp_(data[sorted_prefix_], data[sorted_prefix_ - 1]))) {
      ++sorted_prefix_;
    }
  }

  // Compacts the `compact_count` items at the compactible end of the sorted
  // buffer: removes them and appends every other one (random parity) to
  // `*promoted`, in ascending order. LRA orientation compacts the largest
  // items (the paper's pseudocode); HRA compacts the smallest, protecting
  // the top of the distribution. Leaves the surviving buffer fully sorted.
  void CompactRange(size_t compact_count, util::Xoshiro256& rng,
                    std::vector<T>* promoted) {
    Sort();
    compact_count = std::min(compact_count, size());
    const bool keep_odds = (coin_ == CoinMode::kDeterministic)
                               ? true
                               : rng.NextBit();
    promoted->reserve(compact_count / 2 + 1);
    T* data = begin_mutable();
    const size_t n = size();
    if (accuracy_ == RankAccuracy::kLowRanks) {
      // Compact the suffix [n - compact_count, n).
      const size_t start = n - compact_count;
      for (size_t i = start + (keep_odds ? 1 : 0); i < n; i += 2) {
        promoted->push_back(std::move(data[i]));
      }
      arena_->Truncate(slot_, start);
    } else {
      // Compact the prefix [0, compact_count); mirror-image of LRA so the
      // *largest* B/2 items are never touched.
      for (size_t i = (keep_odds ? 1 : 0); i < compact_count; i += 2) {
        promoted->push_back(std::move(data[i]));
      }
      arena_->EraseFront(slot_, compact_count);
    }
    sorted_prefix_ = size();
    ++version_;
  }

  Compare comp_;
  // Storage: (arena_, slot_). own_arena_ is non-null only for standalone
  // compactors; inside a sketch, arena_ points at the sketch's shared
  // arena and the sketch rebinds it on copies/moves.
  std::unique_ptr<LevelArena<T>> own_arena_;
  LevelArena<T>* arena_ = nullptr;
  uint32_t slot_ = 0;
  uint32_t section_size_;
  uint32_t num_sections_;
  RankAccuracy accuracy_;
  SchedulePolicy schedule_;
  CoinMode coin_;
  uint64_t state_ = 0;
  uint64_t num_compactions_ = 0;
  uint64_t version_ = 0;
  // Items [0, sorted_prefix_) are sorted ascending; [sorted_prefix_, end)
  // is the unsorted insert tail. Compactions reset it to the full size.
  size_t sorted_prefix_ = 0;
};

}  // namespace req

#endif  // REQSKETCH_CORE_RELATIVE_COMPACTOR_H_
