// The relative-compactor (Algorithm 1 and Figures 1-2 of the paper).
//
// A relative-compactor is a buffer of capacity B = 2 * k * num_sections that
// ingests a stream of items and, whenever full, performs a *compaction
// operation*: it sorts the buffer, selects the L_C most-compactible items
// (the largest in LRA orientation, the smallest in HRA orientation), removes
// them, and promotes every other one of them -- even- or odd-indexed with
// equal probability (Observation 4) -- to the caller, which feeds them to
// the next level with doubled weight.
//
// The number of compacted items follows the derandomized exponential
// schedule of Section 2.1: during the (C+1)-st compaction,
//     L_C = (z(C) + 1) * k,
// where z(C) is the number of trailing ones in the binary representation of
// the compaction state C. Section j (of size k, numbered from the
// compactible end) therefore participates in every 2^(j-1)-th compaction,
// and the B/2 items on the protected side are never compacted -- the source
// of the multiplicative error guarantee. Fact 5 (between two compactions of
// exactly j sections there is one of > j sections) follows from the
// trailing-ones schedule and is exercised directly by the unit tests.
//
// For mergeability (Appendix D), the state C is public: Algorithm 3 combines
// the states of two sketches with bitwise OR, and "special" compactions
// (parameter regrowth) compact everything above the protected half.
//
// Hot-path structure: the buffer maintains a *sorted-prefix invariant* --
// items_[0, sorted_prefix_) is sorted ascending, everything after it is the
// unsorted insert tail. Every compaction leaves the surviving buffer fully
// sorted, so between compactions the tail is only the items inserted since.
// Sort() therefore sorts just the tail and runs std::inplace_merge
// (O(u log u + B) for tail length u instead of O(B log B)), and CountRank
// binary-searches the prefix and linearly scans only the tail.
#ifndef REQSKETCH_CORE_RELATIVE_COMPACTOR_H_
#define REQSKETCH_CORE_RELATIVE_COMPACTOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "core/req_common.h"
#include "util/bits.h"
#include "util/random.h"
#include "util/validation.h"

namespace req {

template <typename T, typename Compare = std::less<T>>
class RelativeCompactor {
 public:
  RelativeCompactor(uint32_t section_size, uint32_t num_sections,
                    RankAccuracy accuracy, SchedulePolicy schedule,
                    CoinMode coin, Compare comp = Compare())
      : comp_(std::move(comp)),
        section_size_(section_size),
        num_sections_(num_sections),
        accuracy_(accuracy),
        schedule_(schedule),
        coin_(coin) {
    util::CheckArg(section_size >= 2 && section_size % 2 == 0,
                   "section size must be even and >= 2");
    util::CheckArg(num_sections >= 2, "num_sections must be >= 2");
    items_.reserve(capacity());
  }

  // --- accessors -----------------------------------------------------------

  uint32_t section_size() const { return section_size_; }
  uint32_t num_sections() const { return num_sections_; }
  uint32_t capacity() const {
    return params::Capacity(section_size_, num_sections_);
  }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool IsFull() const { return items_.size() >= capacity(); }

  // Compaction-schedule state C (number of compactions in streaming use;
  // after merges it is the bitwise OR of the constituents' states).
  uint64_t state() const { return state_; }
  void set_state(uint64_t state) { state_ = state; }
  // Appendix D merge rule: the merged state is the bitwise OR (Fact 18/19).
  void OrState(uint64_t other_state) { state_ |= other_state; }

  uint64_t num_compactions() const { return num_compactions_; }

  const std::vector<T>& items() const { return items_; }

  // --- updates -------------------------------------------------------------

  void Insert(const T& item) {
    items_.push_back(item);
    ExtendSortedPrefix();
  }
  void Insert(T&& item) {
    items_.push_back(std::move(item));
    ExtendSortedPrefix();
  }

  // Bulk insert used by the sketch's batch update: appends `count` items
  // in order. Equivalent to `count` scalar Insert calls (including the
  // sorted-prefix bookkeeping) minus the per-call overhead.
  void Insert(const T* data, size_t count) {
    items_.reserve(items_.size() + count);
    items_.insert(items_.end(), data, data + count);
    ExtendSortedPrefix();
  }

  // Grows the underlying buffer's capacity (never shrinks, never changes
  // contents); used by the N-way merge to size each level once up front.
  void Reserve(size_t total) {
    if (total > items_.capacity()) items_.reserve(total);
  }

  // Bulk insert used by merge: appends all items from a sibling buffer.
  void InsertAll(const std::vector<T>& other_items) {
    if (other_items.empty()) return;
    items_.reserve(items_.size() + other_items.size());
    items_.insert(items_.end(), other_items.begin(), other_items.end());
    ExtendSortedPrefix();
  }

  // Move-appending overload used for promotion during compaction cascades:
  // the source keeps its allocation (the caller reuses it as a scratch
  // buffer) but its items are moved, not copied.
  void InsertAll(std::vector<T>&& other_items) {
    if (other_items.empty()) return;
    items_.reserve(items_.size() + other_items.size());
    items_.insert(items_.end(),
                  std::make_move_iterator(other_items.begin()),
                  std::make_move_iterator(other_items.end()));
    other_items.clear();
    ExtendSortedPrefix();
  }

  // Drops all contents and schedule state but keeps the buffer allocation:
  // the cheap-retirement primitive behind ReqSketch::Reset(), which the
  // sliding-window wrapper calls every bucket rotation.
  void Clear() {
    items_.clear();
    sorted_prefix_ = 0;
    state_ = 0;
    num_compactions_ = 0;
  }

  // Reconfigures the section geometry after the sketch's global parameters
  // regrow (N -> N^2 recomputes k and B; Appendix D.1). Existing items and
  // state are preserved; the caller is responsible for having run the
  // special compaction first.
  void SetGeometry(uint32_t section_size, uint32_t num_sections) {
    util::CheckArg(section_size >= 2 && section_size % 2 == 0,
                   "section size must be even and >= 2");
    util::CheckArg(num_sections >= 2, "num_sections must be >= 2");
    section_size_ = section_size;
    num_sections_ = num_sections;
  }

  // --- compaction ----------------------------------------------------------

  // Returns the number of items the schedule will compact next: the paper's
  // L_C = (z(C)+1)*k, clamped to half the capacity (the clamp is the
  // "L <= B/2 always holds" property; it only binds defensively after
  // merges inflate the state).
  uint32_t NextCompactionWidth() const {
    uint32_t sections_involved;
    switch (schedule_) {
      case SchedulePolicy::kExponential:
        sections_involved = static_cast<uint32_t>(
            util::TrailingOnes(state_)) + 1;
        break;
      case SchedulePolicy::kUniform:
        sections_involved = num_sections_;
        break;
      case SchedulePolicy::kSingleSection:
        sections_involved = 1;
        break;
      default:
        sections_involved = 1;
    }
    sections_involved = std::min(sections_involved, num_sections_);
    return sections_involved * section_size_;
  }

  // Performs one scheduled compaction (Lines 5-10 of Algorithm 1, extended
  // per Algorithm 3 to also consume any items beyond the nominal capacity).
  // Fills `*promoted` (cleared first) with the items to be fed to the next
  // level; the caller owns the vector and can reuse it across compactions
  // as a scratch buffer. Leaves `*promoted` empty (and the schedule state
  // untouched) when there is nothing to compact; callers invoke it only
  // when size() >= capacity().
  void Compact(util::Xoshiro256& rng, std::vector<T>* promoted) {
    promoted->clear();
    const uint32_t width = NextCompactionWidth();
    // Everything beyond the nominal capacity B is "extra" (can only appear
    // during merges) and is always included in the compaction.
    const size_t extras =
        items_.size() > capacity() ? items_.size() - capacity() : 0;
    size_t compact_count =
        std::min(items_.size(), static_cast<size_t>(width) + extras);
    // Keep the compacted range even so exactly half of it is promoted and
    // total weight is conserved (the estimator then satisfies
    // RankEstimate(max) == n exactly).
    compact_count &= ~size_t{1};
    if (compact_count < 2) return;
    CompactRange(compact_count, rng, promoted);
    state_ += 1;
    ++num_compactions_;
  }

  // Value-returning convenience wrapper (tests and simple callers).
  std::vector<T> Compact(util::Xoshiro256& rng) {
    std::vector<T> promoted;
    Compact(rng, &promoted);
    return promoted;
  }

  // "Special" compaction used when parameters regrow and during merges
  // (Algorithm 3, SpecialCompaction): compacts every item above the
  // protected half, leaving at most capacity()/2 items. Leaves `*promoted`
  // empty if the buffer already holds <= capacity()/2 items.
  void SpecialCompact(util::Xoshiro256& rng, std::vector<T>* promoted) {
    promoted->clear();
    const size_t protect = capacity() / 2;
    if (items_.size() <= protect) return;
    const size_t compact_count = (items_.size() - protect) & ~size_t{1};
    if (compact_count < 2) return;
    CompactRange(compact_count, rng, promoted);
    state_ += 1;
    ++num_compactions_;
  }

  std::vector<T> SpecialCompact(util::Xoshiro256& rng) {
    std::vector<T> promoted;
    SpecialCompact(rng, &promoted);
    return promoted;
  }

  // --- queries -------------------------------------------------------------

  // Number of stored items <= y (inclusive) or < y (exclusive), unweighted.
  // Binary search over the sorted prefix plus a linear pass over the insert
  // tail: O(log B + u) instead of O(B).
  uint64_t CountRank(const T& y, Criterion criterion) const {
    const auto prefix_end =
        items_.begin() + static_cast<ptrdiff_t>(sorted_prefix_);
    uint64_t count;
    if (criterion == Criterion::kInclusive) {
      count = static_cast<uint64_t>(
          std::upper_bound(items_.begin(), prefix_end, y, comp_) -
          items_.begin());
      for (auto it = prefix_end; it != items_.end(); ++it) {
        if (!comp_(y, *it)) ++count;  // x <= y
      }
    } else {
      count = static_cast<uint64_t>(
          std::lower_bound(items_.begin(), prefix_end, y, comp_) -
          items_.begin());
      for (auto it = prefix_end; it != items_.end(); ++it) {
        if (comp_(*it, y)) ++count;  // x < y
      }
    }
    return count;
  }

  // Restores buffer contents and schedule state; used by deserialization
  // (core/req_serde.h) only. The sorted prefix is recomputed from the data.
  void Restore(std::vector<T> items, uint64_t state,
               uint64_t num_compactions) {
    items_ = std::move(items);
    sorted_prefix_ = static_cast<size_t>(
        std::is_sorted_until(items_.begin(), items_.end(), comp_) -
        items_.begin());
    state_ = state;
    num_compactions_ = num_compactions;
  }

  // Ensures items_ is sorted ascending (queries that need order call this).
  // Merge-based: only the insert tail is sorted from scratch, then merged
  // with the already-sorted prefix -- O(u log u + B) for tail length u
  // instead of the O(B log B) full sort.
  void Sort() {
    if (sorted_prefix_ == items_.size()) return;
    const auto mid =
        items_.begin() + static_cast<ptrdiff_t>(sorted_prefix_);
    std::sort(mid, items_.end(), comp_);
    if (sorted_prefix_ > 0) {
      std::inplace_merge(items_.begin(), mid, items_.end(), comp_);
    }
    sorted_prefix_ = items_.size();
  }
  bool sorted() const { return sorted_prefix_ == items_.size(); }
  // Length of the sorted prefix (exposed for tests and diagnostics).
  size_t sorted_prefix() const { return sorted_prefix_; }

 private:
  // Advances sorted_prefix_ past any newly appended items that continue the
  // ascending order. When the prefix is stalled short of the end this
  // compares one adjacent pair and stops, so it is O(1) amortized; its
  // purpose is to keep already-ordered input (sorted streams, promoted
  // runs landing in an empty or fully sorted buffer) free to sort later.
  void ExtendSortedPrefix() {
    while (sorted_prefix_ < items_.size() &&
           (sorted_prefix_ == 0 ||
            !comp_(items_[sorted_prefix_], items_[sorted_prefix_ - 1]))) {
      ++sorted_prefix_;
    }
  }

  // Compacts the `compact_count` items at the compactible end of the sorted
  // buffer: removes them and appends every other one (random parity) to
  // `*promoted`, in ascending order. LRA orientation compacts the largest
  // items (the paper's pseudocode); HRA compacts the smallest, protecting
  // the top of the distribution. Leaves the surviving buffer fully sorted.
  void CompactRange(size_t compact_count, util::Xoshiro256& rng,
                    std::vector<T>* promoted) {
    Sort();
    compact_count = std::min(compact_count, items_.size());
    const bool keep_odds = (coin_ == CoinMode::kDeterministic)
                               ? true
                               : rng.NextBit();
    promoted->reserve(compact_count / 2 + 1);
    if (accuracy_ == RankAccuracy::kLowRanks) {
      // Compact the suffix [size - compact_count, size).
      const size_t start = items_.size() - compact_count;
      for (size_t i = start + (keep_odds ? 1 : 0); i < items_.size();
           i += 2) {
        promoted->push_back(std::move(items_[i]));
      }
      items_.resize(start);
    } else {
      // Compact the prefix [0, compact_count); mirror-image of LRA so the
      // *largest* B/2 items are never touched.
      for (size_t i = (keep_odds ? 1 : 0); i < compact_count; i += 2) {
        promoted->push_back(std::move(items_[i]));
      }
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<ptrdiff_t>(compact_count));
    }
    sorted_prefix_ = items_.size();
  }

  Compare comp_;
  std::vector<T> items_;
  uint32_t section_size_;
  uint32_t num_sections_;
  RankAccuracy accuracy_;
  SchedulePolicy schedule_;
  CoinMode coin_;
  uint64_t state_ = 0;
  uint64_t num_compactions_ = 0;
  // items_[0, sorted_prefix_) is sorted ascending; [sorted_prefix_, end)
  // is the unsorted insert tail. Compactions reset it to the full size.
  size_t sorted_prefix_ = 0;
};

}  // namespace req

#endif  // REQSKETCH_CORE_RELATIVE_COMPACTOR_H_
