// A materialized, weight-indexed sorted view of a quantiles sketch.
//
// The REQ sketch answers rank queries directly from its buffers, but
// quantile / CDF / PMF queries need the items in sorted order with
// cumulative weights. The view stores structure-of-arrays: one contiguous
// item array plus a parallel *weight-prefix index* (inclusive cumulative
// weights), so a rank binary search touches one cache-dense array and a
// quantile binary search touches only the uint64 prefix array
// (Estimate-Rank in Algorithm 2 is the rank direction; this is its
// inverse).
//
// Construction paths:
//   * from unsorted (item, weight) pairs -- O(S log S) sort; the original
//     path, kept for aggregators and as the seed-era reference.
//   * AssignMerged: in-place rebuild from two already-sorted runs (the
//     merged upper-level run and the level-0 run), reusing the arrays'
//     capacity -- the O(dirty) incremental-repair path driven by
//     ReqSketch's view cache.
//
// Query kernels:
//   * GetRank / GetQuantile: one binary search each.
//   * GetRanks(const T*, size_t, uint64_t*): bulk kernel -- sorts the
//     query points once and answers all of them in a single forward
//     co-scan of the view with galloping advances,
//     O((Q + R') + Q log Q) for Q queries against R entries (R' = span of
//     entries actually crossed) instead of Q * O(log R).
//   * GetCDF: the split points are required ascending, so the same
//     co-scan runs without the sort.
#ifndef REQSKETCH_CORE_SORTED_VIEW_H_
#define REQSKETCH_CORE_SORTED_VIEW_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <numeric>
#include <utility>
#include <vector>

#include "core/req_common.h"
#include "util/validation.h"

namespace req {

// Merges two sorted weighted runs into out_items/out_weights (cleared
// first; ties go to run A). Run B's entry weights come from b_weights
// when non-null, else uniformly b_uniform_weight. Shared by the sketch's
// upper-level run maintenance and the chain's closed-run folding so the
// tie-breaking and weight handling cannot drift apart;
// SortedView::AssignMerged* fuses the same loop with the cumulative-
// weight pass for the published view.
template <typename T, typename Compare>
void MergeWeightedRuns(const T* a_items, const uint64_t* a_weights,
                       size_t a_n, const T* b_items,
                       const uint64_t* b_weights,
                       uint64_t b_uniform_weight, size_t b_n,
                       std::vector<T>* out_items,
                       std::vector<uint64_t>* out_weights,
                       const Compare& comp) {
  out_items->clear();
  out_weights->clear();
  out_items->reserve(a_n + b_n);
  out_weights->reserve(a_n + b_n);
  const auto b_weight = [&](size_t j) {
    return b_weights != nullptr ? b_weights[j] : b_uniform_weight;
  };
  size_t i = 0, j = 0;
  while (i < a_n && j < b_n) {
    if (comp(b_items[j], a_items[i])) {
      out_items->push_back(b_items[j]);
      out_weights->push_back(b_weight(j));
      ++j;
    } else {
      out_items->push_back(a_items[i]);
      out_weights->push_back(a_weights[i]);
      ++i;
    }
  }
  for (; i < a_n; ++i) {
    out_items->push_back(a_items[i]);
    out_weights->push_back(a_weights[i]);
  }
  for (; j < b_n; ++j) {
    out_items->push_back(b_items[j]);
    out_weights->push_back(b_weight(j));
  }
}

template <typename T, typename Compare = std::less<T>>
class SortedView {
 public:
  // Builds from (item, weight) pairs; total_weight must equal the stream
  // length n represented by the sketch.
  SortedView(std::vector<std::pair<T, uint64_t>> weighted_items,
             uint64_t total_weight, Compare comp = Compare())
      : comp_(std::move(comp)), total_weight_(total_weight) {
    util::CheckArg(!weighted_items.empty(),
                   "SortedView requires a non-empty sketch");
    std::sort(weighted_items.begin(), weighted_items.end(),
              [this](const auto& a, const auto& b) {
                return comp_(a.first, b.first);
              });
    items_.reserve(weighted_items.size());
    cum_weights_.reserve(weighted_items.size());
    uint64_t cum = 0;
    for (auto& [item, weight] : weighted_items) {
      cum += weight;
      items_.push_back(std::move(item));
      cum_weights_.push_back(cum);
    }
    util::CheckState(cum == total_weight_,
                     "sorted view weight mismatch: sketch corrupted");
  }

  // Empty shell for in-place (re)builds via AssignMerged; queries are only
  // legal after a successful assignment. Used by the memoized view cache
  // so repeated repairs reuse the arrays' heap capacity.
  explicit SortedView(Compare comp = Compare())
      : comp_(std::move(comp)), total_weight_(0) {}

  // In-place rebuild by merging two sorted runs:
  //   run A: upper levels, per-entry weights in a_weights (already > 0),
  //   run B: level 0, every entry with weight b_weight.
  // Either run may be empty (but not both). Reuses items_/cum_weights_
  // capacity; O(|A| + |B|).
  void AssignMerged(const T* a_items, const uint64_t* a_weights, size_t a_n,
                    const T* b_items, size_t b_n, uint64_t b_weight,
                    uint64_t total_weight) {
    AssignMergedImpl(a_items, a_weights, a_n, b_items, nullptr, b_weight,
                     b_n, total_weight);
  }

  // As AssignMerged, but run B also carries per-entry weights (used by
  // the Section 5 chain to merge the closed-summaries run with the
  // active summary's view).
  void AssignMergedWeighted(const T* a_items, const uint64_t* a_weights,
                            size_t a_n, const T* b_items,
                            const uint64_t* b_weights, size_t b_n,
                            uint64_t total_weight) {
    AssignMergedImpl(a_items, a_weights, a_n, b_items, b_weights,
                     /*b_uniform_weight=*/0, b_n, total_weight);
  }

  size_t size() const { return items_.size(); }
  uint64_t total_weight() const { return total_weight_; }

  // Structure-of-arrays accessors (the weight-prefix index is
  // cum_weights(): inclusive cumulative weight up to each entry).
  const std::vector<T>& items() const { return items_; }
  const std::vector<uint64_t>& cum_weights() const { return cum_weights_; }
  const T& ItemAt(size_t i) const { return items_[i]; }
  uint64_t CumWeightAt(size_t i) const { return cum_weights_[i]; }
  // Per-entry weight, recovered from the prefix index.
  uint64_t WeightAt(size_t i) const {
    return i == 0 ? cum_weights_[0] : cum_weights_[i] - cum_weights_[i - 1];
  }

  // Estimated absolute rank of y: total weight of stored items <= y
  // (inclusive) or < y (exclusive).
  uint64_t GetRank(const T& y, Criterion criterion) const {
    const size_t idx = UpperIndex(0, y, criterion);
    return idx == 0 ? 0 : cum_weights_[idx - 1];
  }

  // Normalized rank in [0, 1].
  double GetNormalizedRank(const T& y, Criterion criterion) const {
    return static_cast<double>(GetRank(y, criterion)) /
           static_cast<double>(total_weight_);
  }

  // Bulk rank kernel: fills out[i] with GetRank(ys[i], criterion) for all
  // `count` query points. Sorts the query points once (by index, so the
  // output order is the caller's), then answers everything in one forward
  // co-scan with galloping advances. Exactly equal to calling GetRank in
  // a loop.
  void GetRanks(const T* ys, size_t count, uint64_t* out,
                Criterion criterion) const {
    if (count == 0) return;
    // Local order buffer: any number of threads may run bulk queries
    // concurrently on one shared (memoized) view.
    std::vector<size_t> order(count);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return comp_(ys[a], ys[b]); });
    size_t pos = 0;
    for (size_t q : order) {
      pos = UpperIndex(pos, ys[q], criterion);
      out[q] = pos == 0 ? 0 : cum_weights_[pos - 1];
    }
  }

  // CDF at the given (pre-validated, ascending) split points: result[i] is
  // the normalized rank of split[i]; a final entry of 1.0 is appended.
  // Ascending inputs make this the sort-free case of the bulk kernel: one
  // co-scan, no per-split binary search over the full view. Shared by the
  // sketch and the Section 5 chain.
  std::vector<double> GetCDF(const std::vector<T>& splits,
                             Criterion criterion) const {
    std::vector<double> cdf;
    cdf.reserve(splits.size() + 1);
    const double denom = static_cast<double>(total_weight_);
    size_t pos = 0;
    for (const T& split : splits) {
      pos = UpperIndex(pos, split, criterion);
      const uint64_t rank = pos == 0 ? 0 : cum_weights_[pos - 1];
      cdf.push_back(static_cast<double>(rank) / denom);
    }
    cdf.push_back(1.0);
    return cdf;
  }

  // Quantile for normalized rank q in [0, 1]: the smallest stored item whose
  // cumulative weight reaches q * n (inclusive), or the smallest item whose
  // cumulative weight exceeds q * n (exclusive). q = 0 returns the smallest
  // stored item, q = 1 the largest. One binary search over the weight-prefix
  // index only (no item comparisons).
  const T& GetQuantile(double q, Criterion criterion) const {
    util::CheckArg(q >= 0.0 && q <= 1.0,
                   "normalized rank must be in [0, 1]");
    const double pos = q * static_cast<double>(total_weight_);
    uint64_t target;
    if (criterion == Criterion::kInclusive) {
      target = static_cast<uint64_t>(std::ceil(pos));
      if (target == 0) target = 1;
    } else {
      target = static_cast<uint64_t>(std::floor(pos)) + 1;
    }
    if (target > total_weight_) return items_.back();
    // First entry with cum_weight >= target.
    const size_t idx = static_cast<size_t>(
        std::lower_bound(cum_weights_.begin(), cum_weights_.end(), target) -
        cum_weights_.begin());
    return items_[idx];
  }

 private:
  // Shared two-run merge core: run B's entry weights come from
  // b_weights when non-null, else uniformly b_uniform_weight.
  void AssignMergedImpl(const T* a_items, const uint64_t* a_weights,
                        size_t a_n, const T* b_items,
                        const uint64_t* b_weights,
                        uint64_t b_uniform_weight, size_t b_n,
                        uint64_t total_weight) {
    util::CheckArg(a_n + b_n > 0, "SortedView requires a non-empty sketch");
    items_.clear();
    cum_weights_.clear();
    items_.reserve(a_n + b_n);
    cum_weights_.reserve(a_n + b_n);
    const auto b_weight = [&](size_t j) {
      return b_weights != nullptr ? b_weights[j] : b_uniform_weight;
    };
    uint64_t cum = 0;
    size_t i = 0, j = 0;
    while (i < a_n && j < b_n) {
      if (comp_(b_items[j], a_items[i])) {
        cum += b_weight(j);
        items_.push_back(b_items[j++]);
      } else {
        cum += a_weights[i];
        items_.push_back(a_items[i++]);
      }
      cum_weights_.push_back(cum);
    }
    for (; i < a_n; ++i) {
      cum += a_weights[i];
      items_.push_back(a_items[i]);
      cum_weights_.push_back(cum);
    }
    for (; j < b_n; ++j) {
      cum += b_weight(j);
      items_.push_back(b_items[j]);
      cum_weights_.push_back(cum);
    }
    total_weight_ = total_weight;
    util::CheckState(cum == total_weight_,
                     "sorted view weight mismatch: sketch corrupted");
  }

  // First index in [lo, size) whose item is past y: > y under inclusive
  // semantics, >= y under exclusive. Galloping (exponential) probe from
  // `lo` followed by a binary search inside the located range, so a
  // forward co-scan pays O(log gap) per query rather than O(log R).
  size_t UpperIndex(size_t lo, const T& y, Criterion criterion) const {
    const size_t n = items_.size();
    const auto past = [&](const T& item) {
      return criterion == Criterion::kInclusive ? comp_(y, item)
                                                : !comp_(item, y);
    };
    if (lo >= n || past(items_[lo])) return lo;
    // items_[lo] is not past y; gallop until one is (or the end).
    size_t step = 1;
    size_t prev = lo;  // highest index known not past y
    while (prev + step < n && !past(items_[prev + step])) {
      prev += step;
      step <<= 1;
    }
    const size_t hi = std::min(n, prev + step);
    // Invariant: items_[prev] not past, items_[hi] past (or hi == n).
    size_t first = prev + 1;
    size_t len = hi - first;
    while (len > 0) {
      const size_t half = len / 2;
      if (!past(items_[first + half])) {
        first += half + 1;
        len -= half + 1;
      } else {
        len = half;
      }
    }
    return first;
  }

  Compare comp_;
  std::vector<T> items_;
  std::vector<uint64_t> cum_weights_;
  uint64_t total_weight_;
};

}  // namespace req

#endif  // REQSKETCH_CORE_SORTED_VIEW_H_
