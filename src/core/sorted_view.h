// A materialized, weight-annotated sorted view of a quantiles sketch.
//
// The REQ sketch answers rank queries directly from its buffers, but
// quantile / CDF / PMF queries need the items in sorted order with
// cumulative weights. Building this view costs O(S log S) in the sketch
// size S and then answers any number of queries in O(log S) each, so
// callers issuing many queries should build it once (Estimate-Rank in
// Algorithm 2 is the rank direction; this is its inverse).
#ifndef REQSKETCH_CORE_SORTED_VIEW_H_
#define REQSKETCH_CORE_SORTED_VIEW_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/req_common.h"
#include "util/validation.h"

namespace req {

template <typename T, typename Compare = std::less<T>>
class SortedView {
 public:
  struct Entry {
    T item;
    uint64_t weight;      // 2^level at insertion time
    uint64_t cum_weight;  // inclusive cumulative weight up to this entry
  };

  // Builds from (item, weight) pairs; total_weight must equal the stream
  // length n represented by the sketch.
  SortedView(std::vector<std::pair<T, uint64_t>> weighted_items,
             uint64_t total_weight, Compare comp = Compare())
      : comp_(std::move(comp)), total_weight_(total_weight) {
    util::CheckArg(!weighted_items.empty(),
                   "SortedView requires a non-empty sketch");
    std::sort(weighted_items.begin(), weighted_items.end(),
              [this](const auto& a, const auto& b) {
                return comp_(a.first, b.first);
              });
    entries_.reserve(weighted_items.size());
    uint64_t cum = 0;
    for (auto& [item, weight] : weighted_items) {
      cum += weight;
      entries_.push_back(Entry{std::move(item), weight, cum});
    }
    util::CheckState(cum == total_weight_,
                     "sorted view weight mismatch: sketch corrupted");
  }

  size_t size() const { return entries_.size(); }
  uint64_t total_weight() const { return total_weight_; }
  const std::vector<Entry>& entries() const { return entries_; }

  // Estimated absolute rank of y: total weight of stored items <= y
  // (inclusive) or < y (exclusive).
  uint64_t GetRank(const T& y, Criterion criterion) const {
    // Find the first entry with entry.item > y (inclusive) or >= y
    // (exclusive); the previous entry's cum_weight is the rank.
    auto it = (criterion == Criterion::kInclusive)
                  ? std::upper_bound(entries_.begin(), entries_.end(), y,
                                     [this](const T& value, const Entry& e) {
                                       return comp_(value, e.item);
                                     })
                  : std::lower_bound(entries_.begin(), entries_.end(), y,
                                     [this](const Entry& e, const T& value) {
                                       return comp_(e.item, value);
                                     });
    if (it == entries_.begin()) return 0;
    return std::prev(it)->cum_weight;
  }

  // Normalized rank in [0, 1].
  double GetNormalizedRank(const T& y, Criterion criterion) const {
    return static_cast<double>(GetRank(y, criterion)) /
           static_cast<double>(total_weight_);
  }

  // CDF at the given (ascending) split points: result[i] is the normalized
  // rank of split[i]; a final entry of 1.0 is appended. One binary search
  // per split point. Shared by the sketch and the Section 5 chain.
  std::vector<double> GetCDF(const std::vector<T>& splits,
                             Criterion criterion) const {
    std::vector<double> cdf;
    cdf.reserve(splits.size() + 1);
    for (const T& split : splits) {
      cdf.push_back(GetNormalizedRank(split, criterion));
    }
    cdf.push_back(1.0);
    return cdf;
  }

  // Quantile for normalized rank q in [0, 1]: the smallest stored item whose
  // cumulative weight reaches q * n (inclusive), or the smallest item whose
  // cumulative weight exceeds q * n (exclusive). q = 0 returns the smallest
  // stored item, q = 1 the largest.
  const T& GetQuantile(double q, Criterion criterion) const {
    util::CheckArg(q >= 0.0 && q <= 1.0,
                   "normalized rank must be in [0, 1]");
    const double pos = q * static_cast<double>(total_weight_);
    uint64_t target;
    if (criterion == Criterion::kInclusive) {
      target = static_cast<uint64_t>(std::ceil(pos));
      if (target == 0) target = 1;
    } else {
      target = static_cast<uint64_t>(std::floor(pos)) + 1;
    }
    if (target > total_weight_) return entries_.back().item;
    // First entry with cum_weight >= target.
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), target,
        [](const Entry& e, uint64_t t) { return e.cum_weight < t; });
    return it->item;
  }

 private:
  Compare comp_;
  std::vector<Entry> entries_;
  uint64_t total_weight_;
};

}  // namespace req

#endif  // REQSKETCH_CORE_SORTED_VIEW_H_
