// Common types and parameter derivations for the REQ sketch
// (Cormode, Karnin, Liberty, Thaler, Veselý: "Relative Error Streaming
// Quantiles", PODS 2021; arXiv:2004.01668).
//
// Parameter scheme (Appendix D.1, Eq. (16), with practical constants):
//   - The user-facing parameter is k_base (the paper's k-hat), which alone
//     governs accuracy: Var[Err(y)] = O(R(y)^2 / k_base^2).
//   - For a current input-size upper bound N, the per-level section size is
//       k(N) = 2 * ceil(k_base / sqrt(log2(N / k_base)))
//     and the number of sections is
//       num_sections(N) = ceil(log2(N / k(N))) + 1,
//     giving buffer capacity B(N) = 2 * k(N) * num_sections(N).
//   - N starts at N0 = 8 * k_base and squares whenever the input outgrows it
//     (Section 5 / Appendix D), after which k and B are recomputed and each
//     level undergoes a "special" compaction down to B/2 items.
//
// The paper's worst-case constants (2^5 multiplier on k, N0 = 2^8 k-hat) are
// exposed in theory.h for the bound-validation benches; the sketch itself
// uses the practical constants above, which preserve every structural
// property the analysis relies on (Fact 5, Observation 4, protected half,
// L <= B/2) while keeping memory reasonable.
#ifndef REQSKETCH_CORE_REQ_COMMON_H_
#define REQSKETCH_CORE_REQ_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "util/bits.h"
#include "util/validation.h"

namespace req {

namespace detail {

// Rejects NaN in a bulk-query point set before it reaches a sorting
// kernel (NaN is incomparable under std::less, which would hand
// std::sort a broken comparator -- undefined behavior, not just a
// garbage answer). Shared by every surface exposing bulk GetRanks.
template <typename T>
inline void CheckBulkQueryPoints(const T* ys, size_t count) {
  if constexpr (std::is_floating_point_v<T>) {
    for (size_t i = 0; i < count; ++i) {
      util::CheckArg(!std::isnan(ys[i]),
                     "bulk query points must not be NaN");
    }
  } else {
    (void)ys;
    (void)count;
  }
}

}  // namespace detail

// Which end of the rank range gets the multiplicative guarantee.
// kHighRanks (HRA) protects items near the maximum (latency p99/p99.9 use
// case); it is the "reversed comparator" construction from Section 1.
// kLowRanks (LRA) is the orientation the paper's pseudocode uses.
enum class RankAccuracy : uint8_t {
  kLowRanks = 0,
  kHighRanks = 1,
};

// How the compaction coin is flipped (Observation 4).
// kRandom is the paper's algorithm. kDeterministic always keeps odd-indexed
// items; with k set per Appendix C this realizes the derandomized
// O(eps^-1 log^3(eps n)) deterministic sketch discussed there.
enum class CoinMode : uint8_t {
  kRandom = 0,
  kDeterministic = 1,
};

// Compaction schedule policy. kExponential is Algorithm 1's derandomized
// exponential schedule L_C = (z(C)+1)*k. The others exist for the E9
// ablation: kUniform always compacts the full second half (L = B/2), which
// the paper shows forces k ~ 1/eps^2; kSingleSection always compacts only
// the top section (L = k), which discards the protected-prefix growth and
// degrades the per-level halving property.
enum class SchedulePolicy : uint8_t {
  kExponential = 0,
  kUniform = 1,
  kSingleSection = 2,
};

// Rank/quantile query semantics: inclusive counts items <= y (the paper's
// R(y)); exclusive counts items < y.
enum class Criterion : uint8_t {
  kInclusive = 0,
  kExclusive = 1,
};

struct ReqConfig {
  // Accuracy parameter k-hat; even, >= 4. Larger is more accurate:
  // relative rank error standard deviation ~ c / k_base at protected ranks.
  uint32_t k_base = 32;
  RankAccuracy accuracy = RankAccuracy::kHighRanks;
  CoinMode coin = CoinMode::kRandom;
  SchedulePolicy schedule = SchedulePolicy::kExponential;
  // If nonzero, the stream length is known in advance (Theorem 14 mode):
  // parameters are fixed for this N and never regrown.
  uint64_t n_hint = 0;
  uint64_t seed = 0x5eed5eed5eed5eedULL;
};

namespace params {

// N never grows beyond this; squaring stops here (practically unbounded).
inline constexpr uint64_t kMaxN = uint64_t{1} << 62;

inline constexpr uint32_t kMinK = 4;
inline constexpr uint32_t kMinNumSections = 3;

// Initial input-size estimate N0 as a function of k_base.
inline uint64_t InitialN(uint32_t k_base) { return uint64_t{8} * k_base; }

// Section size k(N) = 2 * ceil(k_base / sqrt(log2(N / k_base))), even and
// >= kMinK. Shrinks by ~sqrt(2) each time N squares (Appendix D.1).
inline uint32_t SectionSize(uint32_t k_base, uint64_t n_bound) {
  const double ratio =
      std::max(2.0, static_cast<double>(n_bound) / k_base);
  const double log_ratio = std::max(1.0, std::log2(ratio));
  const uint32_t k = 2 * static_cast<uint32_t>(
                             std::ceil(k_base / std::sqrt(log_ratio)));
  return std::max(kMinK, k);
}

// Number of sections: ceil(log2(N / k)) + 1, at least kMinNumSections.
// The "+1" extra section is the merge-analysis slack from Eq. (16).
inline uint32_t NumSections(uint32_t section_size, uint64_t n_bound) {
  const uint64_t ratio = std::max<uint64_t>(2, n_bound / section_size);
  const uint32_t sections =
      static_cast<uint32_t>(util::CeilLog2(ratio)) + 1;
  return std::max(kMinNumSections, sections);
}

// Buffer capacity B = 2 * k * num_sections.
inline uint32_t Capacity(uint32_t section_size, uint32_t num_sections) {
  return 2 * section_size * num_sections;
}

// Conservative a-priori relative standard error at protected ranks:
// sigma[Err(y)] / R*(y) where R*(y) is the rank measured from the accurate
// end. Derived from Lemma 12's Var <= 2^5 R^2 / (k B) with this
// implementation's k * B ~= 4 k_base^2. Single source of truth for the
// sketch and every wrapper that reports its error bound.
inline double RelativeStdErr(uint32_t k_base) {
  return 2.83 / static_cast<double>(k_base);
}

inline void ValidateConfig(const ReqConfig& config) {
  util::CheckArg(config.k_base >= kMinK,
                 "k_base must be >= 4 (got " +
                     std::to_string(config.k_base) + ")");
  util::CheckArg(config.k_base % 2 == 0,
                 "k_base must be even (Algorithm 1 requires k in 2N+), got " +
                     std::to_string(config.k_base));
}

}  // namespace params
}  // namespace req

#endif  // REQSKETCH_CORE_REQ_COMMON_H_
