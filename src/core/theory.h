// The paper's parameter settings and space bounds, with the exact constants
// from the text. These are used by the bound-validation benches (E3, E7,
// E11) to normalize measured quantities against the theory; the sketch
// itself uses the practical constants in req_common.h.
//
// All logs follow the paper's conventions: log2 for stream-length terms,
// natural log for 1/delta terms (the distinction is absorbed by constants
// in the theorems; we fix a convention so the benches are reproducible).
#ifndef REQSKETCH_CORE_THEORY_H_
#define REQSKETCH_CORE_THEORY_H_

#include <cstdint>

namespace req {
namespace theory {

// Eq. (6): k = 2 * ceil( (4/eps) * sqrt( log(1/delta) / log2(eps n) ) ),
// the setting proving Theorem 14 (known stream length n).
uint64_t KnownNSectionSize(double eps, double delta, uint64_t n);

// Eq. (26): k-hat = (1/eps) * sqrt(log(1/delta)), the mergeable-sketch
// accuracy parameter of Appendix D.5.
double KHatMergeable(double eps, double delta);

// Eq. (15): k = 2^4 * ceil( (1/eps) * log2 log(1/delta) ), the
// small-failure-probability setting of Theorem 17 (Appendix C).
uint64_t SmallDeltaSectionSize(double eps, double delta);

// Buffer size B = 2 k ceil(log2(n/k)) (Algorithm 1, line 1).
uint64_t BufferSize(uint64_t k, uint64_t n);

// Theorem 1 space bound (up to its constant):
//   (1/eps) * log2^{1.5}(eps n) * sqrt(log(1/delta)).
double SpaceBoundThm1(double eps, double delta, uint64_t n);

// Theorem 2 space bound (up to its constant):
//   (1/eps) * log2^2(eps n) * log2 log(1/delta).
double SpaceBoundThm2(double eps, double delta, uint64_t n);

// Deterministic bound matching Zhang-Wang (end of Appendix C):
//   (1/eps) * log2^3(eps n).
double SpaceBoundDeterministic(double eps, uint64_t n);

// Lower bound for randomized comparison-based algorithms (Section 1):
//   (1/eps) * log2(eps n).
double SpaceLowerBound(double eps, uint64_t n);

// Lemma 12 variance bound: Var[Err(y)] <= 2^5 * R(y)^2 / (k * B).
double VarianceBound(uint64_t rank, uint64_t k, uint64_t buffer_size);

// Theorem 14 failure probability bound for a given multiplicative error
// target: Pr[|Err| >= eps R] < 2 exp(-eps^2 k B / 2^6) (plus the
// conditioning delta; we report the exponential term).
double FailureProbBound(double eps, uint64_t k, uint64_t buffer_size);

// Number of levels bound (Observation 13): ceil(log2(n/B)) + 1.
uint64_t MaxLevels(uint64_t n, uint64_t buffer_size);

}  // namespace theory
}  // namespace req

#endif  // REQSKETCH_CORE_THEORY_H_
