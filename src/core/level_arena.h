// Contiguous level storage for the REQ sketch.
//
// A LevelArena owns ONE flat item buffer holding every level of a sketch,
// plus a per-level slot table {offset, size, capacity}. Levels are laid out
// back to back in level order, each inside a fixed-capacity slot, so a
// query, merge or serde pass that walks "all retained items" streams one
// contiguous allocation instead of chasing a vector-of-vectors across the
// heap. See src/core/DESIGN_arena.md for the layout rationale and the
// invariants listed below.
//
// Invariants:
//   * slots are contiguous: slot[i].offset == slot[i-1].offset +
//     slot[i-1].cap, slot[0].offset == 0, and data_.size() == sum of caps.
//   * slot[i].size <= slot[i].cap at all times; the bytes past size inside
//     a slot are default-constructed filler, never read.
//   * slot ids are stable: growing slot i moves the *contents* of slots
//     > i up, but ids, sizes and relative order never change.
//
// Growth: a slot that outgrows its capacity (merge concatenation, bound
// regrowth) shifts every later slot up in one move pass -- O(total) but
// rare by construction: the compaction invariant keeps a quiescent level
// under its nominal capacity B, which is the slot's initial reservation,
// and the N-way merge pre-reserves every slot once up front
// (ReserveSlots) before inserting anything.
//
// The arena is a dumb storage engine on purpose: all sketch semantics
// (schedules, sorting invariants, compaction) live in RelativeCompactor,
// which addresses its slot through this class. Copying an arena copies the
// flat buffer; the compactors bound to it are re-pointed by their owner
// (ReqSketch's copy/move constructors).
//
// Item-type requirements: T must be default-constructible and
// copy/move-assignable (slot regions are value-initialized filler that
// items are assigned into) in addition to the comparator requirements the
// sketch already imposes. This is one notch stricter than the
// vector-per-level storage it replaced, which only needed T to be
// insertable; every item type the library is used/tested with (numeric
// types, std::string, plain structs) satisfies it.
#ifndef REQSKETCH_CORE_LEVEL_ARENA_H_
#define REQSKETCH_CORE_LEVEL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "util/validation.h"

namespace req {

// Minimal non-owning view over a contiguous item run (the arena hands these
// out instead of `const std::vector<T>&`). Interface mirrors the read-only
// subset of std::vector that callers (serde, merge, tests) actually use.
template <typename T>
class ItemSpan {
 public:
  ItemSpan() = default;
  ItemSpan(const T* data, size_t size) : data_(data), size_(size) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  friend bool operator==(const ItemSpan& a, const ItemSpan& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const ItemSpan& a, const ItemSpan& b) {
    return !(a == b);
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

template <typename T>
class LevelArena {
 public:
  LevelArena() = default;

  size_t num_slots() const { return slots_.size(); }

  // Appends a new slot; `cap_hint` bounds the eagerly materialized
  // capacity. Materialization is clamped (kInitialSlotCap) and grows by
  // doubling on demand: slot regions are value-initialized vector storage,
  // so an eager multi-megabyte region would be *touched*, not just
  // reserved -- and untrusted inputs (serde with a corrupt k_base) can
  // request absurd capacities that are rejected only after the level
  // object exists. Returns the slot id.
  uint32_t AddSlot(size_t cap_hint) {
    const size_t cap = std::min(cap_hint, kInitialSlotCap);
    const size_t offset = data_.size();
    data_.resize(offset + cap);
    slots_.push_back(Slot{offset, 0, cap});
    return static_cast<uint32_t>(slots_.size() - 1);
  }

  // Drops every slot with id >= count and releases its region (the flat
  // buffer keeps its heap allocation, so re-adding slots is cheap). Used
  // by ReqSketch::Reset -- bucket rotation must not leak retired-level
  // regions -- and by deserialization before rebuilding the level stack.
  void TruncateSlots(size_t count) {
    if (count >= slots_.size()) return;
    data_.resize(count == 0 ? 0 : slots_[count - 1].offset +
                                      slots_[count - 1].cap);
    slots_.resize(count);
  }

  T* Data(uint32_t s) { return data_.data() + slots_[s].offset; }
  const T* Data(uint32_t s) const { return data_.data() + slots_[s].offset; }
  size_t Size(uint32_t s) const { return slots_[s].size; }
  size_t SlotCapacity(uint32_t s) const { return slots_[s].cap; }
  // Total items stored across all slots (not counting slack capacity).
  size_t TotalSize() const {
    size_t total = 0;
    for (const Slot& slot : slots_) total += slot.size;
    return total;
  }

  // Heap bytes actually held by the arena, slack included: the quota
  // accounting figure behind MemoryFootprint(). Item payload plus the
  // slot table, both at *capacity* (what the allocator charges us), not
  // live size.
  size_t AllocatedBytes() const {
    return data_.capacity() * sizeof(T) + slots_.capacity() * sizeof(Slot);
  }

  // Releases allocator slack: trims each slot's capacity to its live size
  // (one compacting pass, slot order and ids preserved) and shrinks the
  // flat buffer. Steady-state cost of an idle sketch becomes its payload.
  void ShrinkToFit() {
    size_t out = 0;
    for (Slot& slot : slots_) {
      if (slot.offset != out) {
        T* base = data_.data();
        std::move(base + slot.offset, base + slot.offset + slot.size,
                  base + out);
      }
      slot.offset = out;
      slot.cap = slot.size;
      out += slot.size;
    }
    data_.resize(out);
    data_.shrink_to_fit();
    slots_.shrink_to_fit();
  }

  // Ensures slot s can hold at least `cap` items, shifting later slots up
  // as needed. Never shrinks.
  void Reserve(uint32_t s, size_t cap) {
    if (cap <= slots_[s].cap) return;
    GrowSlot(s, cap);
  }

  // Bulk form of Reserve: one pass, one buffer resize, one shift per slot
  // region, back to front. caps[i] is the requested capacity of slot i
  // (ignored where smaller than the current cap). Used by the N-way merge
  // to size every level exactly once before any insertion.
  void ReserveSlots(const std::vector<size_t>& caps) {
    util::CheckArg(caps.size() <= slots_.size(),
                   "ReserveSlots: more capacities than slots");
    size_t total_delta = 0;
    for (size_t i = 0; i < caps.size(); ++i) {
      if (caps[i] > slots_[i].cap) total_delta += caps[i] - slots_[i].cap;
    }
    if (total_delta == 0) return;
    const size_t old_total = data_.size();
    data_.resize(old_total + total_delta);
    // Move each slot's contents to its final offset, highest slot first so
    // regions never overlap a not-yet-moved source.
    size_t new_offset_end = data_.size();
    for (size_t i = slots_.size(); i-- > 0;) {
      Slot& slot = slots_[i];
      const size_t new_cap =
          (i < caps.size() && caps[i] > slot.cap) ? caps[i] : slot.cap;
      const size_t new_offset = new_offset_end - new_cap;
      if (new_offset != slot.offset) {
        // Only the live prefix needs to move; slack is filler.
        std::move_backward(data_.begin() + slot.offset,
                           data_.begin() + slot.offset + slot.size,
                           data_.begin() + new_offset + slot.size);
      }
      slot.offset = new_offset;
      slot.cap = new_cap;
      new_offset_end = new_offset;
    }
    util::CheckState(new_offset_end == 0, "arena slot layout corrupted");
  }

  // Like std::vector::push_back, PushBack is safe when `item` aliases
  // arena storage (e.g. re-inserting an element read through items()):
  // the value is saved before any growth can reallocate the buffer.
  void PushBack(uint32_t s, const T& item) {
    Slot& slot = slots_[s];
    if (slot.size == slot.cap) {
      T saved = item;  // `item` may point into data_; copy before resize
      GrowSlot(s, GrownCap(slot.cap, slot.size + 1));
      data_[slots_[s].offset + slots_[s].size] = std::move(saved);
    } else {
      data_[slot.offset + slot.size] = item;
    }
    ++slots_[s].size;
  }
  void PushBack(uint32_t s, T&& item) {
    Slot& slot = slots_[s];
    if (slot.size == slot.cap) {
      T saved = std::move(item);
      GrowSlot(s, GrownCap(slot.cap, slot.size + 1));
      data_[slots_[s].offset + slots_[s].size] = std::move(saved);
    } else {
      data_[slot.offset + slot.size] = std::move(item);
    }
    ++slots_[s].size;
  }

  // Appends [first, last); move iterators are honored. The range must
  // NOT alias this arena's storage (the same precondition
  // std::vector::insert places on inserted ranges).
  template <typename It>
  void Append(uint32_t s, It first, It last) {
    const size_t count = static_cast<size_t>(std::distance(first, last));
    if (count == 0) return;
    Slot* slot = &slots_[s];
    if (slot->size + count > slot->cap) {
      GrowSlot(s, GrownCap(slot->cap, slot->size + count));
      slot = &slots_[s];
    }
    T* out = data_.data() + slot->offset + slot->size;
    for (; first != last; ++first, ++out) *out = *first;
    slot->size += count;
  }

  // Removes the first `count` items of slot s, sliding the remainder down.
  void EraseFront(uint32_t s, size_t count) {
    Slot& slot = slots_[s];
    T* base = data_.data() + slot.offset;
    std::move(base + count, base + slot.size, base);
    slot.size -= count;
  }

  void Truncate(uint32_t s, size_t new_size) { slots_[s].size = new_size; }
  void ClearSlot(uint32_t s) { slots_[s].size = 0; }

 private:
  // Largest slot region materialized up front; larger requests grow on
  // demand (amortized O(1) per item, one shift of the slots above per
  // doubling). Kept small so an idle metric's steady-state cost is its
  // sketch payload, not pre-touched filler: at 16 doubles this is 128
  // bytes per level instead of 2 KiB, and a busy level reaches its
  // nominal capacity B after a handful of amortized doublings.
  static constexpr size_t kInitialSlotCap = 16;

  struct Slot {
    size_t offset;
    size_t size;
    size_t cap;
  };

  static size_t GrownCap(size_t cap, size_t needed) {
    const size_t doubled = cap * 2;
    return doubled > needed ? doubled : needed;
  }

  // Grows slot s to new_cap by opening a gap after it: one buffer resize,
  // one shift of everything above. O(items above s), rare by construction.
  void GrowSlot(uint32_t s, size_t new_cap) {
    const size_t delta = new_cap - slots_[s].cap;
    const size_t old_total = data_.size();
    data_.resize(old_total + delta);
    // Shift the live prefix of every later slot, highest first.
    for (size_t i = slots_.size(); i-- > s + 1;) {
      Slot& slot = slots_[i];
      std::move_backward(data_.begin() + slot.offset,
                         data_.begin() + slot.offset + slot.size,
                         data_.begin() + slot.offset + delta + slot.size);
      slot.offset += delta;
    }
    slots_[s].cap = new_cap;
  }

  std::vector<T> data_;
  std::vector<Slot> slots_;
};

}  // namespace req

#endif  // REQSKETCH_CORE_LEVEL_ARENA_H_
