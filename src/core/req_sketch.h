// ReqSketch: the full Relative Error Quantiles sketch (Algorithm 2 of the
// paper), a stack of relative-compactors where the output stream of level h
// feeds level h+1 and items at level h carry weight 2^h.
//
// Capabilities:
//   * One-pass streaming updates with no advance knowledge of the stream
//     length: the input-size bound N starts at N0 = 8 * k_base and squares
//     whenever exceeded, with per-level parameter recomputation and special
//     compactions (Section 5 / Appendix D, footnote-9 variant). The simpler
//     close-out scheme of Section 5 is implemented separately in
//     req_chain.h.
//   * Batch updates: Update(const T*, size_t) appends run-length chunks
//     directly into level 0 and runs the compaction cascade once per fill
//     instead of once per item. Produces a sketch bit-identical to the
//     equivalent sequence of single-item updates (same seeds, same
//     compaction schedule, same coin flips).
//   * Full mergeability (Theorem 3, Algorithm 3): Merge() combines two
//     sketches built from arbitrary merge trees; compaction-schedule states
//     combine by bitwise OR, parameters regrow as needed, and each level is
//     compacted at most once per merge.
//   * Rank, quantile, CDF and PMF queries with inclusive or exclusive
//     semantics; HRA (accurate near the max; default) or LRA orientation.
//     Bulk queries: GetRanks(const T*, size_t, uint64_t*) answers a whole
//     batch in one co-scan of the sorted view, and GetCDF shares the same
//     kernel.
//
// Storage: every level lives in ONE shared LevelArena (core/level_arena.h),
// so the whole retained set is a single contiguous allocation -- queries,
// merges and serde walk flat memory instead of a vector-of-vectors.
// Update/compaction semantics are independent of the storage layout and
// bit-identical to the per-level-vector layout this replaced. The item
// type T must be default-constructible and copy/move-assignable (see the
// requirements note in core/level_arena.h).
//
// Query engine: order-based queries go through a memoized sorted view that
// is maintained *incrementally*: the cache keeps a sorted run per level
// (stamped with the level's content version) plus a merged run of all
// levels >= 1, and a rebuild after an update re-sorts only the levels that
// actually changed -- usually just level 0, an O(dirty) repair instead of
// an O(R log R) rebuild. set_incremental_view_repair(false) switches every
// rebuild to the seed-era full path (collect + sort all weighted pairs);
// benches and equivalence tests use it as the reference baseline.
//
// Thread safety: any number of threads may run const query methods
// concurrently on a shared sketch (the lazily memoized sorted view is
// filled under an internal lock with a double-checked atomic flag), but
// mutations (Update / Merge) still require exclusive access: no query or
// other mutation may run concurrently with them. This is exactly the
// contract the sharded orchestrator in concurrency/sharded_req_sketch.h
// needs: shards are mutated under a per-shard lock while the merged
// read-only view is queried freely from many threads.
//
// Error guarantee (Theorem 1): for a fixed item y, with probability 1-delta,
//   |RankEstimate(y) - R(y)| <= eps * R(y)          (LRA)
//   |RankEstimate(y) - R(y)| <= eps * (n - R(y))    (HRA, mirrored)
// where eps ~ c / k_base. The sketch stores
// O(k_base * log^{1.5}(n / k_base)) items (Theorems 14/36).
#ifndef REQSKETCH_CORE_REQ_SKETCH_H_
#define REQSKETCH_CORE_REQ_SKETCH_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/level_arena.h"
#include "core/relative_compactor.h"
#include "core/req_common.h"
#include "core/sorted_view.h"
#include "util/random.h"
#include "util/validation.h"

namespace req {

namespace detail {

// std::atomic<bool> with value-copy semantics so the sketch stays copyable.
// Copies transfer the value, not any synchronization relationship: they are
// only made while the source sketch is externally quiescent.
struct CopyableAtomicBool {
  std::atomic<bool> value{false};
  CopyableAtomicBool() = default;
  CopyableAtomicBool(const CopyableAtomicBool& other)
      : value(other.value.load(std::memory_order_acquire)) {}
  CopyableAtomicBool& operator=(const CopyableAtomicBool& other) {
    value.store(other.value.load(std::memory_order_acquire),
                std::memory_order_release);
    return *this;
  }
};

// A mutex that copy/move-constructs to a fresh, unlocked mutex: the lock
// protects per-object lazy initialization, so it never travels with the
// data it guards.
struct CopyableMutex {
  std::mutex mutex;
  CopyableMutex() = default;
  CopyableMutex(const CopyableMutex&) {}
  CopyableMutex& operator=(const CopyableMutex&) { return *this; }
};

}  // namespace detail

template <typename T, typename Compare>
struct ReqSerde;  // defined in core/req_serde.h; needs internal access

template <typename T, typename Compare = std::less<T>>
class ReqSketch {
 public:
  using value_type = T;
  using Level = RelativeCompactor<T, Compare>;

  explicit ReqSketch(const ReqConfig& config = ReqConfig(),
                     Compare comp = Compare())
      : config_(config), comp_(std::move(comp)), rng_(config.seed) {
    params::ValidateConfig(config_);
    if (config_.n_hint > 0) {
      n_bound_ = std::max(config_.n_hint, params::InitialN(config_.k_base));
      fixed_n_ = true;
    } else {
      n_bound_ = params::InitialN(config_.k_base);
    }
    RecomputeGeometry();
    levels_.emplace_back(MakeLevel());
    view_cache_.view = SortedView<T, Compare>(comp_);
  }

  // Copies re-point every level at the copied arena; the view cache is
  // value data and travels as-is. Only made while the source is quiescent
  // (same contract as the atomics in the cache machinery).
  ReqSketch(const ReqSketch& other)
      : config_(other.config_),
        comp_(other.comp_),
        rng_(other.rng_),
        arena_(other.arena_),
        levels_(other.levels_),
        n_(other.n_),
        n_bound_(other.n_bound_),
        section_size_(other.section_size_),
        num_sections_(other.num_sections_),
        fixed_n_(other.fixed_n_),
        min_item_(other.min_item_),
        max_item_(other.max_item_),
        incremental_view_repair_(other.incremental_view_repair_),
        view_cache_(other.view_cache_),
        view_ready_(other.view_ready_) {
    RebindLevels();
  }

  ReqSketch(ReqSketch&& other) noexcept
      : config_(std::move(other.config_)),
        comp_(std::move(other.comp_)),
        rng_(other.rng_),
        arena_(std::move(other.arena_)),
        levels_(std::move(other.levels_)),
        n_(other.n_),
        n_bound_(other.n_bound_),
        section_size_(other.section_size_),
        num_sections_(other.num_sections_),
        fixed_n_(other.fixed_n_),
        min_item_(std::move(other.min_item_)),
        max_item_(std::move(other.max_item_)),
        incremental_view_repair_(other.incremental_view_repair_),
        view_cache_(std::move(other.view_cache_)),
        view_ready_(other.view_ready_) {
    RebindLevels();
  }

  ReqSketch& operator=(const ReqSketch& other) {
    if (this == &other) return *this;
    ReqSketch copy(other);
    *this = std::move(copy);
    return *this;
  }

  ReqSketch& operator=(ReqSketch&& other) noexcept {
    if (this == &other) return *this;
    config_ = std::move(other.config_);
    comp_ = std::move(other.comp_);
    rng_ = other.rng_;
    arena_ = std::move(other.arena_);
    levels_ = std::move(other.levels_);
    n_ = other.n_;
    n_bound_ = other.n_bound_;
    section_size_ = other.section_size_;
    num_sections_ = other.num_sections_;
    fixed_n_ = other.fixed_n_;
    min_item_ = std::move(other.min_item_);
    max_item_ = std::move(other.max_item_);
    incremental_view_repair_ = other.incremental_view_repair_;
    promote_scratch_.clear();
    view_cache_ = std::move(other.view_cache_);
    view_ready_ = other.view_ready_;
    RebindLevels();
    return *this;
  }

  // --- basic accessors -----------------------------------------------------

  const ReqConfig& config() const { return config_; }
  bool is_empty() const { return n_ == 0; }
  // Exact number of items the sketch represents.
  uint64_t n() const { return n_; }
  // Current input-size upper bound N (squares as the stream grows).
  uint64_t n_bound() const { return n_bound_; }
  size_t num_levels() const { return levels_.size(); }
  uint32_t section_size() const { return section_size_; }
  uint32_t num_sections() const { return num_sections_; }
  uint32_t level_capacity() const {
    return params::Capacity(section_size_, num_sections_);
  }
  const std::vector<Level>& levels() const { return levels_; }

  // Number of items currently stored across all levels (the paper's space
  // measure, "number of universe items stored"). One arena pass.
  size_t RetainedItems() const { return arena_.TotalSize(); }

  // Total weight represented by stored items; equals n() at all times
  // (compactions always promote exactly half of an even-sized range).
  uint64_t TotalWeight() const {
    uint64_t total = 0;
    for (size_t h = 0; h < levels_.size(); ++h) {
      total += levels_[h].size() << h;
    }
    return total;
  }

  uint64_t NumCompactions() const {
    uint64_t total = 0;
    for (const Level& level : levels_) total += level.num_compactions();
    return total;
  }

  // O(1) upper bound on RetainedItems(): a quiescent level never stores
  // more than its capacity B. Useful where an exact count per call would
  // be wasteful -- e.g. the sliding-window wrapper sizing its merge
  // scratch or reporting window memory without walking every bucket level.
  size_t EstimateRetainedItems() const {
    return levels_.size() * static_cast<size_t>(level_capacity());
  }

  // Resident heap footprint of the sketch in bytes: object header, arena
  // storage at capacity, level table, promotion scratch, and the memoized
  // view cache (runs, upper-run, merge scratch, published view). This is
  // the figure quota accounting charges per metric, so it counts what the
  // allocator holds, not just live items. Takes the view lock briefly so a
  // concurrent view rebuild cannot race the cache walk.
  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this) + arena_.AllocatedBytes() +
                   levels_.capacity() * sizeof(Level) +
                   promote_scratch_.capacity() * sizeof(T);
    std::lock_guard<std::mutex> lock(view_mutex_.mutex);
    const ViewCacheState& c = view_cache_;
    bytes += c.runs.capacity() * sizeof(std::vector<T>);
    for (const std::vector<T>& run : c.runs) {
      bytes += run.capacity() * sizeof(T);
    }
    bytes += c.run_versions.capacity() * sizeof(uint64_t);
    bytes += c.run_valid.capacity() * sizeof(char);
    bytes += c.upper_items.capacity() * sizeof(T);
    bytes += c.upper_weights.capacity() * sizeof(uint64_t);
    bytes += c.scratch_items.capacity() * sizeof(T);
    bytes += c.scratch_weights.capacity() * sizeof(uint64_t);
    bytes += c.view.items().capacity() * sizeof(T);
    bytes += c.view.cum_weights().capacity() * sizeof(uint64_t);
    return bytes;
  }

  // Releases everything except the sketch payload itself: drops the
  // memoized view cache, frees the promotion scratch, and compacts the
  // arena's slack capacity. Accuracy and query answers are unaffected --
  // the next order-based query simply rebuilds its view, and levels regrow
  // their slots on demand. Requires exclusive access, like any mutator;
  // the idle-metric steady state after a trim is the paper's O(k log n)
  // payload plus fixed object headers.
  void TrimMemory() {
    {
      std::lock_guard<std::mutex> lock(view_mutex_.mutex);
      ResetViewCache();
    }
    promote_scratch_.clear();
    promote_scratch_.shrink_to_fit();
    arena_.ShrinkToFit();
  }

  // Exact stream minimum / maximum (tracked outside the buffers).
  const T& MinItem() const {
    util::CheckState(n_ > 0, "MinItem() on an empty sketch");
    return *min_item_;
  }
  const T& MaxItem() const {
    util::CheckState(n_ > 0, "MaxItem() on an empty sketch");
    return *max_item_;
  }

  // --- updates -------------------------------------------------------------

  void Update(const T& item) {
    CheckUpdatable(item);
    GrowIfNeeded(n_ + 1);
    TrackMinMax(item);
    levels_[0].Insert(item);
    ++n_;
    if (levels_[0].IsFull()) CompactCascade(0);
    InvalidateView();
  }

  // Batch update: summarizes `count` items as if each had been passed to
  // the single-item Update, but with the per-item overhead (growth check,
  // min/max tracking, fullness test) amortized over level-0 fills. With
  // identical configuration and seed, the resulting sketch is bit-identical
  // to the one produced by single-item updates: the chunking below breaks
  // exactly at every level-0 fill and every N-regrowth boundary, so the
  // compaction schedule and the coin-flip sequence are the same.
  //
  // Unlike a sequence of single-item updates, the batch validates every
  // item up front: if any item is NaN the call throws without applying
  // anything (strong guarantee).
  void Update(const T* data, size_t count) {
    if (count == 0) return;
    for (size_t i = 0; i < count; ++i) CheckUpdatable(data[i]);

    size_t i = 0;
    while (i < count) {
      GrowIfNeeded(n_ + 1);
      Level& level0 = levels_[0];
      const size_t room = level0.capacity() > level0.size()
                              ? level0.capacity() - level0.size()
                              : 0;
      if (room == 0) {
        // Defensive: cannot normally happen (the cascade below always
        // leaves level 0 under capacity).
        CompactCascade(0);
        continue;
      }
      size_t chunk = std::min(count - i, room);
      if (!fixed_n_) {
        // Never cross an N-regrowth boundary inside a chunk; the next loop
        // iteration regrows first, exactly as single-item updates would.
        chunk = static_cast<size_t>(std::min<uint64_t>(chunk, n_bound_ - n_));
      }
      // Min/max pass fused into the chunk loop: the chunk is still hot in
      // cache when it is appended below.
      const T* mn = data + i;
      const T* mx = data + i;
      for (size_t j = i + 1; j < i + chunk; ++j) {
        if (comp_(data[j], *mn)) mn = data + j;
        if (comp_(*mx, data[j])) mx = data + j;
      }
      TrackMinMax(*mn);
      TrackMinMax(*mx);
      level0.Insert(data + i, chunk);
      n_ += chunk;
      i += chunk;
      if (levels_[0].IsFull()) CompactCascade(0);
    }
    InvalidateView();
  }

  void Update(const std::vector<T>& items) {
    Update(items.data(), items.size());
  }

  // Returns the sketch to its freshly constructed state (same config, same
  // comparator) while keeping the level-0 buffer allocation: the cheap
  // bucket-retirement primitive for the sliding-window subsystem
  // (window/windowed_req_sketch.h). Equivalent to assigning a
  // newly-constructed ReqSketch(config()) but without revalidating the
  // config or reallocating the hot level; with the same seed and input, a
  // Reset() sketch serializes byte-identically to a fresh one.
  void Reset() { Reset(config_.seed); }

  // Reset variant that also reseeds the PRNG (and records the new seed in
  // the config, so serialization round-trips it): the window gives every
  // bucket epoch a distinct deterministic seed, so recycled buckets draw
  // fresh, reproducible coin flips.
  void Reset(uint64_t seed) {
    config_.seed = seed;
    rng_ = util::Xoshiro256(seed);
    n_ = 0;
    if (config_.n_hint > 0) {
      n_bound_ = std::max(config_.n_hint, params::InitialN(config_.k_base));
      fixed_n_ = true;
    } else {
      n_bound_ = params::InitialN(config_.k_base);
      fixed_n_ = false;
    }
    RecomputeGeometry();
    // Keep level 0 (and its arena region); upper levels are torn down --
    // slots included, so recycled buckets never leak retired regions --
    // and the level stack matches a fresh sketch exactly. (erase, not
    // resize: Level has no default constructor.)
    levels_.erase(levels_.begin() + 1, levels_.end());
    arena_.TruncateSlots(1);
    levels_[0].Clear();
    levels_[0].SetGeometry(section_size_, num_sections_);
    min_item_.reset();
    max_item_.reset();
    // Full view-cache teardown (not just invalidation): freshly created
    // upper levels restart their version counters, so stale cached runs
    // could otherwise alias a new level's early versions.
    ResetViewCache();
  }

  // Merges `other` into this sketch (Algorithm 3). Both sketches must have
  // been built with the same k_base and rank-accuracy orientation. `other`
  // is not modified. After the call, this sketch summarizes the
  // concatenation of both inputs with the guarantees of Theorem 3.
  void Merge(const ReqSketch& other) {
    const ReqSketch* source = &other;
    Merge(&source, 1);
  }

  // N-way merge over a contiguous array of sketches. Equivalent to merging
  // them pairwise left-to-right but cheaper: this sketch grows its bound
  // and pre-sizes every level buffer exactly once for the combined
  // contents, then runs a single bottom-up compaction sweep (at most one
  // scheduled compaction per level for the whole batch) instead of one
  // cascade per source.
  void Merge(const ReqSketch* sketches, size_t count) {
    std::vector<const ReqSketch*> sources;
    sources.reserve(count);
    for (size_t i = 0; i < count; ++i) sources.push_back(&sketches[i]);
    Merge(sources.data(), count);
  }

  // Pointer-array form of the N-way merge, for sources that do not live in
  // a contiguous array (e.g. the per-shard sketches of the concurrent
  // orchestrator). `Merge(&p, 1)` is bit-identical to the pairwise
  // `Merge(*p)` (same special compactions, same coin flips).
  void Merge(const ReqSketch* const* sources, size_t count) {
    uint64_t n_new = n_;
    size_t max_levels = levels_.size();
    for (size_t i = 0; i < count; ++i) {
      const ReqSketch& src = *sources[i];
      util::CheckArg(&src != this, "cannot merge a sketch into itself");
      util::CheckArg(config_.k_base == src.config_.k_base,
                     "cannot merge sketches with different k_base");
      util::CheckArg(config_.accuracy == src.config_.accuracy,
                     "cannot merge sketches with different rank-accuracy "
                     "orientation");
      if (src.is_empty()) continue;
      n_new += src.n_;
      max_levels = std::max(max_levels, src.levels_.size());
    }
    if (n_new == n_) return;  // every source empty

    // Lines 4-7 of Algorithm 3: if our bound is too small, run special
    // compactions and square N (possibly repeatedly). One growth to the
    // final combined size replaces the per-merge regrowth a pairwise
    // cascade would perform.
    GrowIfNeeded(n_new);
    EnsureLevel(max_levels - 1);

    // Lines 10-11: a source sketch built under a smaller bound is
    // special-compacted first, on a scratch copy of its levels under
    // *its* parameters (CloneInto a local arena, so the source's storage
    // is never touched). When the bounds already agree the deep copy is
    // skipped and the source buffers are read in place. All regrowth
    // happens BEFORE the reservation below, in source order (the coin
    // flips it draws are therefore the same as regrowing lazily), so the
    // reservation can use the post-compaction sizes.
    LevelArena<T> scratch_arena;
    std::vector<std::vector<Level>> regrown(count);
    std::vector<const std::vector<Level>*> level_stacks(count, nullptr);
    for (size_t i = 0; i < count; ++i) {
      const ReqSketch& src = *sources[i];
      if (src.is_empty()) continue;
      if (src.n_bound_ < n_bound_) {
        regrown[i].reserve(src.levels_.size());
        for (const Level& level : src.levels_) {
          regrown[i].push_back(level.CloneInto(&scratch_arena));
        }
        SpecialCompactLevels(&regrown[i]);
        level_stacks[i] = &regrown[i];
      } else {
        level_stacks[i] = &src.levels_;
      }
    }

    // Pre-size each level's arena slot once for everything about to
    // arrive -- one shift pass over the arena instead of a reallocation
    // (or slot shift) per level per source.
    {
      std::vector<size_t> caps(levels_.size(), 0);
      for (size_t h = 0; h < levels_.size(); ++h) caps[h] = levels_[h].size();
      for (size_t i = 0; i < count; ++i) {
        if (level_stacks[i] == nullptr) continue;
        const std::vector<Level>& stack = *level_stacks[i];
        for (size_t h = 0; h < stack.size() && h < caps.size(); ++h) {
          caps[h] += stack[h].size();
        }
      }
      arena_.ReserveSlots(caps);
    }

    for (size_t i = 0; i < count; ++i) {
      if (level_stacks[i] == nullptr) continue;
      const ReqSketch& src = *sources[i];
      const std::vector<Level>& stack = *level_stacks[i];

      // Combine schedule states (bitwise OR; Facts 18/19) and concatenate
      // buffers level by level.
      for (size_t h = 0; h < stack.size(); ++h) {
        levels_[h].OrState(stack[h].state());
        levels_[h].InsertAll(stack[h].items());
      }

      if (src.min_item_ &&
          (!min_item_ || comp_(*src.min_item_, *min_item_))) {
        min_item_ = src.min_item_;
      }
      if (src.max_item_ &&
          (!max_item_ || comp_(*max_item_, *src.max_item_))) {
        max_item_ = src.max_item_;
      }
    }

    n_ = n_new;

    // Lines 22-24: at most one scheduled compaction per level, bottom-up.
    // Compact() consumes everything beyond the nominal capacity, so a
    // level that received items from many sources still settles in one
    // pass.
    for (size_t h = 0; h < levels_.size(); ++h) {
      if (levels_[h].size() >= levels_[h].capacity()) {
        EnsureLevel(h + 1);
        levels_[h].Compact(rng_, &promote_scratch_);
        levels_[h + 1].InsertAll(std::move(promote_scratch_));
      }
    }
    InvalidateView();
  }

  // --- queries -------------------------------------------------------------

  // Estimate-Rank(y) of Algorithm 2: sum over levels of 2^h times the
  // number of stored items <= y (inclusive) or < y (exclusive). Each level
  // answers by binary search over its sorted prefix plus a scan of its
  // small insert tail: O(levels * log B) rather than O(RetainedItems).
  uint64_t GetRank(const T& y,
                   Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetRank() on an empty sketch");
    uint64_t rank = 0;
    for (size_t h = 0; h < levels_.size(); ++h) {
      rank += levels_[h].CountRank(y, criterion) << h;
    }
    return rank;
  }

  double GetNormalizedRank(
      const T& y, Criterion criterion = Criterion::kInclusive) const {
    return static_cast<double>(GetRank(y, criterion)) /
           static_cast<double>(n_);
  }

  // Bulk rank kernel: fills out[i] with the estimated absolute rank of
  // ys[i]. Sorts the query points once and answers all of them in a
  // single co-scan of the weight-indexed sorted view --
  // O((Q + R) + Q log Q) instead of Q * O(log R). Answers are exactly
  // equal to Q separate view-routed rank queries. NaN query points are
  // rejected up front (the kernel sorts the points, and NaN breaks the
  // strict weak ordering std::sort requires).
  void GetRanks(const T* ys, size_t count, uint64_t* out,
                Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetRanks() on an empty sketch");
    if (count == 0) return;
    detail::CheckBulkQueryPoints(ys, count);
    CachedSortedView().GetRanks(ys, count, out, criterion);
  }

  // Batched rank queries (vector convenience form of the bulk kernel).
  std::vector<uint64_t> GetRanks(
      const std::vector<T>& ys,
      Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetRanks() on an empty sketch");
    std::vector<uint64_t> out(ys.size());
    if (!ys.empty()) {
      detail::CheckBulkQueryPoints(ys.data(), ys.size());
      CachedSortedView().GetRanks(ys.data(), ys.size(), out.data(),
                                  criterion);
    }
    return out;
  }

  // Smallest item whose estimated rank reaches q * n. Amortized O(log S)
  // per query via the memoized sorted view.
  T GetQuantile(double q, Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty sketch");
    // NaN-rejecting up front: a NaN q fails both comparisons, so it can
    // never silently index the sorted view.
    util::CheckArg(q >= 0.0 && q <= 1.0, "normalized rank must be in [0, 1]");
    // q = 0 and q = 1 return the exactly tracked extremes (the extreme
    // items themselves may have been compacted out of the buffers).
    if (q == 0.0) return *min_item_;
    if (q == 1.0) return *max_item_;
    return CachedSortedView().GetQuantile(q, criterion);
  }

  std::vector<T> GetQuantiles(
      const std::vector<double>& qs,
      Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetQuantiles() on an empty sketch");
    // Validate every rank up front (NaN-rejecting), so a bad rank anywhere
    // in the batch throws before any result is produced or any view built.
    for (double q : qs) {
      util::CheckArg(q >= 0.0 && q <= 1.0,
                     "normalized rank must be in [0, 1]");
    }
    const SortedView<T, Compare>& view = CachedSortedView();
    std::vector<T> out;
    out.reserve(qs.size());
    for (double q : qs) {
      if (q == 0.0) {
        out.push_back(*min_item_);
      } else if (q == 1.0) {
        out.push_back(*max_item_);
      } else {
        out.push_back(view.GetQuantile(q, criterion));
      }
    }
    return out;
  }

  // CDF at the given (ascending) split points: result[i] is the estimated
  // normalized rank of split[i]; a final entry of 1.0 is appended. The
  // ascending precondition makes this the sort-free case of the bulk
  // kernel: one forward co-scan of the view.
  std::vector<double> GetCDF(
      const std::vector<T>& splits,
      Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetCDF() on an empty sketch");
    CheckSplits(splits);
    return CachedSortedView().GetCDF(splits, criterion);
  }

  // PMF over the intervals defined by the split points (mass of
  // (-inf, s0], (s0, s1], ..., (s_last, +inf) under inclusive semantics).
  std::vector<double> GetPMF(
      const std::vector<T>& splits,
      Criterion criterion = Criterion::kInclusive) const {
    std::vector<double> pmf = GetCDF(splits, criterion);
    for (size_t i = pmf.size(); i-- > 1;) pmf[i] -= pmf[i - 1];
    return pmf;
  }

  // Appends all stored items with their weights (2^level) to `out`; used by
  // the seed-era view build and by aggregators that combine several
  // summaries (e.g., the Section 5 chain in req_chain.h).
  void AppendWeightedItems(std::vector<std::pair<T, uint64_t>>* out) const {
    for (size_t h = 0; h < levels_.size(); ++h) {
      const uint64_t weight = uint64_t{1} << h;
      for (const T& item : levels_[h].items()) {
        out->emplace_back(item, weight);
      }
    }
  }

  // Diagnostic / benchmarking knob: when disabled, every sorted-view
  // (re)build runs the seed-era full path -- collect all (item, weight)
  // pairs and std::sort them -- instead of the incremental repair that
  // re-sorts only dirtied levels. Query answers are identical either way
  // (the equivalence suite proves it); only the rebuild cost differs.
  void set_incremental_view_repair(bool enabled) {
    incremental_view_repair_ = enabled;
    ResetViewCache();
  }
  bool incremental_view_repair() const { return incremental_view_repair_; }

  // The memoized sorted view of the sketch contents. Built lazily on first
  // use and repaired incrementally after mutations; the reference stays
  // valid until the next mutation.
  //
  // Filling the cache is guarded by a double-checked atomic flag plus a
  // lock, so any number of threads may call this (and the order-based
  // const queries that go through it) concurrently on a shared sketch.
  // Mutations still require exclusive access.
  const SortedView<T, Compare>& CachedSortedView() const {
    util::CheckState(n_ > 0, "CachedSortedView() on an empty sketch");
    if (!view_ready_.value.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(view_mutex_.mutex);
      if (!view_ready_.value.load(std::memory_order_relaxed)) {
        RebuildViewLocked();
        view_ready_.value.store(true, std::memory_order_release);
      }
    }
    return view_cache_.view;
  }

  // Eagerly builds the memoized sorted view (no-op on an empty sketch or a
  // warm cache). Callers that hand a sketch to many concurrent readers can
  // warm the cache once here so every subsequent order-based query takes
  // only the lock-free fast path.
  void PrepareSortedView() const {
    if (n_ > 0) CachedSortedView();
  }

  // Value-semantics accessor kept for compatibility: populates (and then
  // shares) the memoized cache, so a one-shot call pays the build exactly
  // once and query-heavy callers converge on the same cached view as
  // CachedSortedView().
  SortedView<T, Compare> GetSortedView() const {
    util::CheckState(n_ > 0, "GetSortedView() on an empty sketch");
    return CachedSortedView();
  }

  // Conservative a-priori relative standard error at protected ranks
  // (params::RelativeStdErr; Lemma 12).
  double RelativeStdErr() const {
    return params::RelativeStdErr(config_.k_base);
  }

  // Rank confidence bounds at num_std_devs standard deviations (1, 2 or 3).
  uint64_t GetRankLowerBound(const T& y, int num_std_devs,
                             Criterion criterion =
                                 Criterion::kInclusive) const {
    const double estimate = static_cast<double>(GetRank(y, criterion));
    const double margin = num_std_devs * RelativeStdErr() *
                          AccurateSideRank(estimate);
    return static_cast<uint64_t>(std::max(0.0, estimate - margin));
  }
  uint64_t GetRankUpperBound(const T& y, int num_std_devs,
                             Criterion criterion =
                                 Criterion::kInclusive) const {
    const double estimate = static_cast<double>(GetRank(y, criterion));
    const double margin = num_std_devs * RelativeStdErr() *
                          AccurateSideRank(estimate);
    return static_cast<uint64_t>(
        std::min(static_cast<double>(n_), estimate + margin));
  }

 private:
  friend struct ReqSerde<T, Compare>;

  // State behind the memoized sorted view. Everything here is value data
  // (copies travel with the sketch); access is serialized by view_mutex_
  // plus the view_ready_ publication flag.
  struct ViewCacheState {
    // Sorted copy of each level's buffer, stamped with the level's content
    // version at copy time. A rebuild re-sorts only stale runs.
    std::vector<std::vector<T>> runs;
    std::vector<uint64_t> run_versions;
    std::vector<char> run_valid;
    // Merged run of all levels >= 1 (items + per-entry weights). Level 0
    // churns on every update; the upper run survives until a compaction
    // cascade actually touches a higher level.
    std::vector<T> upper_items;
    std::vector<uint64_t> upper_weights;
    size_t upper_levels = 0;  // level count the upper run was built for
    bool upper_valid = false;
    // Merge scratch, reused across rebuilds.
    std::vector<T> scratch_items;
    std::vector<uint64_t> scratch_weights;
    // The published view; rebuilt in place (AssignMerged) so its arrays'
    // capacity is reused across repairs.
    SortedView<T, Compare> view;
  };

  void RebindLevels() {
    for (Level& level : levels_) level.RebindArena(&arena_);
  }

  // Drops the memoized view but keeps the cached runs for incremental
  // repair. Mutators run with exclusive access (no concurrent readers by
  // contract), so plain stores suffice.
  void InvalidateView() {
    view_ready_.value.store(false, std::memory_order_release);
  }

  // Full cache teardown: used when level *objects* are replaced (Reset,
  // deserialization), where a fresh level's restarted version counter
  // could alias a stale cached run.
  void ResetViewCache() {
    view_ready_.value.store(false, std::memory_order_release);
    view_cache_ = ViewCacheState();
    view_cache_.view = SortedView<T, Compare>(comp_);
  }

  // (Re)builds the published view; called under view_mutex_.
  void RebuildViewLocked() const {
    ViewCacheState& c = view_cache_;
    if (!incremental_view_repair_) {
      // Seed-era baseline: collect every (item, weight) pair, sort, scan.
      std::vector<std::pair<T, uint64_t>> weighted;
      weighted.reserve(RetainedItems());
      AppendWeightedItems(&weighted);
      c.view = SortedView<T, Compare>(std::move(weighted), TotalWeight(),
                                      comp_);
      return;
    }
    const size_t num_levels = levels_.size();
    if (c.runs.size() != num_levels) {
      c.runs.resize(num_levels);
      c.run_versions.resize(num_levels, 0);
      c.run_valid.resize(num_levels, 0);
      c.upper_valid = false;
    }
    bool upper_dirty = !c.upper_valid || c.upper_levels != num_levels;
    for (size_t h = 0; h < num_levels; ++h) {
      if (c.run_valid[h] && c.run_versions[h] == levels_[h].version()) {
        continue;
      }
      RefreshRun(h);
      c.run_versions[h] = levels_[h].version();
      c.run_valid[h] = 1;
      if (h >= 1) upper_dirty = true;
    }
    if (upper_dirty) RebuildUpperRun();
    const std::vector<T>& run0 = c.runs[0];
    c.view.AssignMerged(c.upper_items.data(), c.upper_weights.data(),
                        c.upper_items.size(), run0.data(), run0.size(),
                        /*b_weight=*/1, TotalWeight());
  }

  // Copies level h's buffer into its cached run and sorts the copy.
  // Adaptive: the copy inherits the buffer's sorted prefix, and the tail
  // is segmented into natural ascending runs -- long runs (sorted source
  // buffers concatenated by a merge) are kept and merged, only short
  // random stretches are actually sorted. So a level made of already
  // sorted pieces is never re-sorted from scratch.
  void RefreshRun(size_t h) const {
    const Level& level = levels_[h];
    std::vector<T>& run = view_cache_.runs[h];
    const ItemSpan<T> span = level.items();
    run.assign(span.begin(), span.end());
    SortCopiedRun(&run, std::min(level.sorted_prefix(), run.size()));
  }

  void SortCopiedRun(std::vector<T>* run_ptr, size_t prefix) const {
    std::vector<T>& run = *run_ptr;
    const size_t n = run.size();
    if (prefix >= n) return;
    constexpr size_t kMinRun = 32;
    // Contiguous sorted segments [start, end), built left to right.
    std::vector<std::pair<size_t, size_t>> segs;
    if (prefix > 0) segs.emplace_back(0, prefix);
    size_t start = prefix;
    while (start < n) {
      size_t end = start + 1;
      while (end < n && !comp_(run[end], run[end - 1])) ++end;
      if (end - start < kMinRun) {
        // Coalesce short natural runs into one block and sort it.
        end = std::min(n, std::max(end, start + kMinRun));
        std::sort(run.begin() + static_cast<ptrdiff_t>(start),
                  run.begin() + static_cast<ptrdiff_t>(end), comp_);
      }
      segs.emplace_back(start, end);
      start = end;
    }
    // Bottom-up pairwise merging of adjacent segments.
    while (segs.size() > 1) {
      size_t out = 0;
      for (size_t i = 0; i + 1 < segs.size(); i += 2) {
        std::inplace_merge(
            run.begin() + static_cast<ptrdiff_t>(segs[i].first),
            run.begin() + static_cast<ptrdiff_t>(segs[i].second),
            run.begin() + static_cast<ptrdiff_t>(segs[i + 1].second),
            comp_);
        segs[out++] = {segs[i].first, segs[i + 1].second};
      }
      if (segs.size() % 2 != 0) segs[out++] = segs.back();
      segs.resize(out);
    }
  }

  // Merges the cached runs of all levels >= 1 into one weighted run.
  void RebuildUpperRun() const {
    ViewCacheState& c = view_cache_;
    c.upper_items.clear();
    c.upper_weights.clear();
    for (size_t h = 1; h < levels_.size(); ++h) {
      const std::vector<T>& run = c.runs[h];
      if (run.empty()) continue;
      const uint64_t weight = uint64_t{1} << h;
      if (c.upper_items.empty()) {
        c.upper_items.assign(run.begin(), run.end());
        c.upper_weights.assign(run.size(), weight);
        continue;
      }
      MergeWeightedRuns(c.upper_items.data(), c.upper_weights.data(),
                        c.upper_items.size(), run.data(), nullptr, weight,
                        run.size(), &c.scratch_items, &c.scratch_weights,
                        comp_);
      std::swap(c.upper_items, c.scratch_items);
      std::swap(c.upper_weights, c.scratch_weights);
    }
    c.upper_levels = levels_.size();
    c.upper_valid = true;
  }

  Level MakeLevel() {
    return Level(&arena_, section_size_, num_sections_, config_.accuracy,
                 config_.schedule, config_.coin, comp_);
  }

  void EnsureLevel(size_t h) {
    while (levels_.size() <= h) levels_.emplace_back(MakeLevel());
  }

  void RecomputeGeometry() {
    section_size_ = params::SectionSize(config_.k_base, n_bound_);
    num_sections_ = params::NumSections(section_size_, n_bound_);
  }

  // Reject NaN floating-point updates: NaN has no place in a total order.
  void CheckUpdatable(const T& item) {
    if constexpr (std::is_floating_point_v<T>) {
      util::CheckArg(!std::isnan(item), "cannot update sketch with NaN");
    } else {
      (void)item;
    }
  }

  void TrackMinMax(const T& item) {
    if (!min_item_ || comp_(item, *min_item_)) min_item_ = item;
    if (!max_item_ || comp_(*max_item_, item)) max_item_ = item;
  }

  // Section 5 growth: while the bound is exceeded, special-compact every
  // level (bottom-up, the top level excluded per Algorithm 3) and square N,
  // then recompute k and B and reconfigure all levels.
  void GrowIfNeeded(uint64_t n_required) {
    if (fixed_n_) return;  // Theorem 14 mode: parameters fixed a priori.
    while (n_bound_ < n_required) {
      SpecialCompactLevels(&levels_);
      n_bound_ = (n_bound_ >= (uint64_t{1} << 31))
                     ? params::kMaxN
                     : std::min(params::kMaxN, n_bound_ * n_bound_);
      RecomputeGeometry();
      for (Level& level : levels_) {
        level.SetGeometry(section_size_, num_sections_);
      }
    }
  }

  // SpecialCompaction of Algorithm 3 applied to a level stack: compacts
  // every level except the top one down to at most half its capacity,
  // promoting survivors upward.
  void SpecialCompactLevels(std::vector<Level>* levels) {
    if (levels->size() < 2) return;
    for (size_t h = 0; h + 1 < levels->size(); ++h) {
      (*levels)[h].SpecialCompact(rng_, &promote_scratch_);
      (*levels)[h + 1].InsertAll(std::move(promote_scratch_));
    }
  }

  // Streaming compaction cascade: compact level h when full; promotions may
  // fill level h+1, which is then compacted in turn (Algorithm 2's
  // recursive Insert). Promotions go through promote_scratch_, whose
  // allocation is reused across compactions (InsertAll moves the items out
  // but leaves the vector's capacity in place).
  void CompactCascade(size_t h) {
    while (h < levels_.size() && levels_[h].IsFull()) {
      EnsureLevel(h + 1);
      levels_[h].Compact(rng_, &promote_scratch_);
      levels_[h + 1].InsertAll(std::move(promote_scratch_));
      ++h;
    }
  }

  // Rank measured from the accurate end: LRA is accurate near rank 0, HRA
  // near rank n.
  double AccurateSideRank(double rank_estimate) const {
    if (config_.accuracy == RankAccuracy::kLowRanks) return rank_estimate;
    return static_cast<double>(n_) - rank_estimate;
  }

  void CheckSplits(const std::vector<T>& splits) const {
    util::CheckArg(!splits.empty(), "split points must be non-empty");
    for (size_t i = 0; i + 1 < splits.size(); ++i) {
      util::CheckArg(comp_(splits[i], splits[i + 1]),
                     "split points must be strictly ascending");
    }
    if constexpr (std::is_floating_point_v<T>) {
      for (const T& s : splits) {
        util::CheckArg(!std::isnan(s), "split points must not be NaN");
      }
    }
  }

  ReqConfig config_;
  Compare comp_;
  util::Xoshiro256 rng_;
  // Contiguous storage for every level; declared before levels_ so it is
  // constructed first and outlives them on destruction.
  LevelArena<T> arena_;
  std::vector<Level> levels_;
  uint64_t n_ = 0;
  uint64_t n_bound_ = 0;
  uint32_t section_size_ = 0;
  uint32_t num_sections_ = 0;
  bool fixed_n_ = false;
  std::optional<T> min_item_;
  std::optional<T> max_item_;
  // Scratch buffer for promoted items; reused across compactions so the
  // steady-state update path performs no allocations.
  std::vector<T> promote_scratch_;
  bool incremental_view_repair_ = true;
  // Memoized sorted view for order-based queries; invalidated by
  // Update/Merge, repaired incrementally on the next order-based query.
  // view_ready_ is the double-checked publication flag: readers acquire-load
  // it and only touch view_cache_ once it is true; the fill runs under
  // view_mutex_ so concurrent cold readers build the view exactly once.
  mutable ViewCacheState view_cache_;
  mutable detail::CopyableAtomicBool view_ready_;
  mutable detail::CopyableMutex view_mutex_;
};

}  // namespace req

#endif  // REQSKETCH_CORE_REQ_SKETCH_H_
