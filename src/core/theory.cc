#include "core/theory.h"

#include <algorithm>
#include <cmath>

#include "util/validation.h"

namespace req {
namespace theory {

namespace {

// log2(eps * n), floored at 1 so the formulas stay finite for tiny streams.
double Log2EpsN(double eps, uint64_t n) {
  return std::max(1.0, std::log2(eps * static_cast<double>(n)));
}

void CheckEpsDelta(double eps, double delta) {
  util::CheckArg(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  util::CheckArg(delta > 0.0 && delta <= 0.5, "delta must be in (0, 0.5]");
}

}  // namespace

uint64_t KnownNSectionSize(double eps, double delta, uint64_t n) {
  CheckEpsDelta(eps, delta);
  const double inner = (4.0 / eps) * std::sqrt(std::log(1.0 / delta) /
                                               Log2EpsN(eps, n));
  return 2 * static_cast<uint64_t>(std::ceil(inner));
}

double KHatMergeable(double eps, double delta) {
  CheckEpsDelta(eps, delta);
  return (1.0 / eps) * std::sqrt(std::log(1.0 / delta));
}

uint64_t SmallDeltaSectionSize(double eps, double delta) {
  CheckEpsDelta(eps, delta);
  const double loglog =
      std::max(1.0, std::log2(std::max(2.0, std::log(1.0 / delta))));
  return 16 * static_cast<uint64_t>(std::ceil(loglog / eps));
}

uint64_t BufferSize(uint64_t k, uint64_t n) {
  util::CheckArg(k >= 2, "k must be >= 2");
  const double ratio = std::max(2.0, static_cast<double>(n) /
                                         static_cast<double>(k));
  return 2 * k * static_cast<uint64_t>(std::ceil(std::log2(ratio)));
}

double SpaceBoundThm1(double eps, double delta, uint64_t n) {
  CheckEpsDelta(eps, delta);
  return (1.0 / eps) * std::pow(Log2EpsN(eps, n), 1.5) *
         std::sqrt(std::log(1.0 / delta));
}

double SpaceBoundThm2(double eps, double delta, uint64_t n) {
  CheckEpsDelta(eps, delta);
  const double loglog =
      std::max(1.0, std::log2(std::max(2.0, std::log(1.0 / delta))));
  return (1.0 / eps) * std::pow(Log2EpsN(eps, n), 2.0) * loglog;
}

double SpaceBoundDeterministic(double eps, uint64_t n) {
  util::CheckArg(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  return (1.0 / eps) * std::pow(Log2EpsN(eps, n), 3.0);
}

double SpaceLowerBound(double eps, uint64_t n) {
  util::CheckArg(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  return (1.0 / eps) * Log2EpsN(eps, n);
}

double VarianceBound(uint64_t rank, uint64_t k, uint64_t buffer_size) {
  util::CheckArg(k >= 1 && buffer_size >= 1, "k and B must be >= 1");
  const double r = static_cast<double>(rank);
  return 32.0 * r * r /
         (static_cast<double>(k) * static_cast<double>(buffer_size));
}

double FailureProbBound(double eps, uint64_t k, uint64_t buffer_size) {
  util::CheckArg(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  const double exponent = eps * eps * static_cast<double>(k) *
                          static_cast<double>(buffer_size) / 64.0;
  return std::min(1.0, 2.0 * std::exp(-exponent));
}

uint64_t MaxLevels(uint64_t n, uint64_t buffer_size) {
  util::CheckArg(buffer_size >= 1, "B must be >= 1");
  if (n <= buffer_size) return 1;
  const double levels =
      std::ceil(std::log2(static_cast<double>(n) /
                          static_cast<double>(buffer_size)));
  return static_cast<uint64_t>(levels) + 1;
}

}  // namespace theory
}  // namespace req
