// The "simple" unknown-stream-length scheme of Section 5.
//
// Instead of regrowing parameters in place (which ReqSketch does, following
// footnote 9 and the Appendix D analysis), this scheme starts with an
// estimate N_0, and when the stream outgrows the current estimate N_i it
// "closes out" the current summary -- keeping it read-only -- and opens a
// fresh summary built for N_{i+1} = N_i^2. At most log2 log2(eps n)
// summaries ever exist, their sizes are geometrically dominated by the last
// one, and the rank estimate for y is the sum of the per-summary estimates
// (each sub-stream achieving relative error eps implies the total does).
//
// This class exists so the E8 bench can compare both schemes against the
// known-n baseline; for general use prefer ReqSketch, which additionally
// supports merging.
#ifndef REQSKETCH_CORE_REQ_CHAIN_H_
#define REQSKETCH_CORE_REQ_CHAIN_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/req_common.h"
#include "core/req_sketch.h"
#include "core/sorted_view.h"
#include "util/validation.h"

namespace req {

template <typename T, typename Compare = std::less<T>>
class ReqChain {
 public:
  explicit ReqChain(const ReqConfig& config = ReqConfig(),
                    Compare comp = Compare())
      : config_(config), comp_(comp), view_(comp_) {
    params::ValidateConfig(config_);
    current_bound_ = params::InitialN(config_.k_base);
    OpenSummary();
  }

  bool is_empty() const { return n_ == 0; }
  uint64_t n() const { return n_; }

  // Number of summaries (closed + active); bounded by log2 log2 of the
  // stream length over N0.
  size_t num_summaries() const { return summaries_.size(); }

  size_t RetainedItems() const {
    size_t total = 0;
    for (const auto& s : summaries_) total += s->RetainedItems();
    return total;
  }

  void Update(const T& item) {
    // Section 5: when the *total* stream length reaches the current
    // estimate N_i, close out and open the next summary for N_{i+1}.
    if (n_ >= current_bound_) CloseOutAndGrow();
    summaries_.back()->Update(item);
    ++n_;
    InvalidateView();
  }

  // Batch update: forwards run-length chunks to the active summary's batch
  // path, breaking exactly at every close-out boundary, so the resulting
  // chain is identical to the one built by single-item updates.
  void Update(const T* data, size_t count) {
    size_t i = 0;
    while (i < count) {
      if (n_ >= current_bound_) CloseOutAndGrow();
      const size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(count - i, current_bound_ - n_));
      summaries_.back()->Update(data + i, chunk);
      n_ += chunk;
      i += chunk;
    }
    if (count > 0) InvalidateView();
  }

  void Update(const std::vector<T>& items) {
    Update(items.data(), items.size());
  }

  // Rank estimate: sum of the per-summary estimates (Section 5).
  uint64_t GetRank(const T& y,
                   Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetRank() on an empty chain");
    uint64_t rank = 0;
    for (const auto& s : summaries_) {
      if (!s->is_empty()) rank += s->GetRank(y, criterion);
    }
    return rank;
  }

  double GetNormalizedRank(
      const T& y, Criterion criterion = Criterion::kInclusive) const {
    return static_cast<double>(GetRank(y, criterion)) /
           static_cast<double>(n_);
  }

  // Bulk rank kernel over the memoized combined view: answers exactly
  // equal the scalar GetRank loop (an item's combined-view rank is the
  // total weight of stored items <= it, i.e. the sum of the per-summary
  // estimates). NaN query points are rejected up front (the kernel
  // sorts the points, and NaN breaks std::sort's ordering contract).
  void GetRanks(const T* ys, size_t count, uint64_t* out,
                Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetRanks() on an empty chain");
    if (count == 0) return;
    detail::CheckBulkQueryPoints(ys, count);
    CombinedView().GetRanks(ys, count, out, criterion);
  }

  std::vector<uint64_t> GetRanks(
      const std::vector<T>& ys,
      Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetRanks() on an empty chain");
    std::vector<uint64_t> out(ys.size());
    if (!ys.empty()) {
      detail::CheckBulkQueryPoints(ys.data(), ys.size());
      CombinedView().GetRanks(ys.data(), ys.size(), out.data(), criterion);
    }
    return out;
  }

  T GetQuantile(double q, Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty chain");
    // NaN-rejecting: validate before materializing the combined view.
    util::CheckArg(q >= 0.0 && q <= 1.0, "normalized rank must be in [0, 1]");
    return CombinedView().GetQuantile(q, criterion);
  }

  std::vector<T> GetQuantiles(
      const std::vector<double>& qs,
      Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetQuantiles() on an empty chain");
    for (double q : qs) {
      util::CheckArg(q >= 0.0 && q <= 1.0,
                     "normalized rank must be in [0, 1]");
    }
    const SortedView<T, Compare>& view = CombinedView();
    std::vector<T> out;
    out.reserve(qs.size());
    for (double q : qs) out.push_back(view.GetQuantile(q, criterion));
    return out;
  }

  // CDF at the given (ascending) split points; shares the combined view's
  // co-scan kernel with the sketch surface.
  std::vector<double> GetCDF(
      const std::vector<T>& splits,
      Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetCDF() on an empty chain");
    util::CheckArg(!splits.empty(), "split points must be non-empty");
    for (size_t i = 0; i + 1 < splits.size(); ++i) {
      util::CheckArg(comp_(splits[i], splits[i + 1]),
                     "split points must be strictly ascending");
    }
    return CombinedView().GetCDF(splits, criterion);
  }

 private:
  // Drops the memoized combined view (mutators run with exclusive
  // access, so a plain store suffices; the cached closed run survives --
  // it only ever grows at close-outs).
  void InvalidateView() {
    view_ready_.value.store(false, std::memory_order_release);
  }

  // The memoized combined view over every summary. Closed summaries are
  // read-only forever (Section 5), so their sorted weighted runs are
  // folded into one closed run exactly once (at collection); a rebuild
  // after an update takes the active summary's own memoized (and
  // incrementally repaired) sorted view and merges the two runs -- an
  // O(R) merge, no re-sort.
  //
  // Same concurrency contract as ReqSketch's sorted-view cache (and the
  // same double-checked fill): any number of threads may run const
  // queries concurrently on a shared chain; Update requires exclusive
  // access.
  const SortedView<T, Compare>& CombinedView() const {
    if (!view_ready_.value.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(view_mutex_.mutex);
      if (!view_ready_.value.load(std::memory_order_relaxed)) {
        RebuildViewLocked();
        view_ready_.value.store(true, std::memory_order_release);
      }
    }
    return view_;
  }

  void RebuildViewLocked() const {
    // Fold newly closed summaries into the sorted closed run (each
    // summary exactly once, at its close-out). The fold builds a
    // TRANSIENT sorted run instead of touching the closed summary's
    // memoized view: that cache is permanent once filled, and a
    // fold-and-forget consumer would otherwise pin a ~3x copy of every
    // closed summary for the chain's lifetime.
    while (closed_cached_ + 1 < summaries_.size()) {
      const auto& closed = *summaries_[closed_cached_];
      if (!closed.is_empty()) {
        std::vector<std::pair<T, uint64_t>> weighted;
        weighted.reserve(closed.RetainedItems());
        closed.AppendWeightedItems(&weighted);
        std::sort(weighted.begin(), weighted.end(),
                  [this](const auto& a, const auto& b) {
                    return comp_(a.first, b.first);
                  });
        std::vector<T> run_items;
        std::vector<uint64_t> run_weights;
        run_items.reserve(weighted.size());
        run_weights.reserve(weighted.size());
        for (auto& [item, weight] : weighted) {
          run_items.push_back(std::move(item));
          run_weights.push_back(weight);
        }
        MergeWeightedRuns(closed_items_.data(), closed_weights_.data(),
                          closed_items_.size(), run_items.data(),
                          run_weights.data(), uint64_t{0},
                          run_items.size(), &scratch_items_,
                          &scratch_weights_, comp_);
        std::swap(closed_items_, scratch_items_);
        std::swap(closed_weights_, scratch_weights_);
      }
      ++closed_cached_;
    }
    const auto& active = *summaries_.back();
    if (active.is_empty()) {
      view_.AssignMergedWeighted(closed_items_.data(),
                                 closed_weights_.data(),
                                 closed_items_.size(), nullptr, nullptr, 0,
                                 n_);
      return;
    }
    const SortedView<T, Compare>& av = active.CachedSortedView();
    active_weights_.resize(av.size());
    for (size_t i = 0; i < av.size(); ++i) {
      active_weights_[i] = av.WeightAt(i);
    }
    view_.AssignMergedWeighted(closed_items_.data(), closed_weights_.data(),
                               closed_items_.size(), av.items().data(),
                               active_weights_.data(), av.size(), n_);
  }
  // Closes out the active summary (it stays read-only) and opens the next
  // one with the squared estimate.
  void CloseOutAndGrow() {
    current_bound_ = (current_bound_ >= (uint64_t{1} << 31))
                         ? params::kMaxN
                         : current_bound_ * current_bound_;
    OpenSummary();
  }

  void OpenSummary() {
    ReqConfig sub_config = config_;
    sub_config.n_hint = current_bound_;  // fixed-N summary (Theorem 14)
    // Derive a distinct deterministic seed per summary.
    sub_config.seed = config_.seed + 0x9e3779b97f4a7c15ULL *
                                         (summaries_.size() + 1);
    summaries_.push_back(
        std::make_unique<ReqSketch<T, Compare>>(sub_config, comp_));
  }

  ReqConfig config_;
  Compare comp_;
  std::vector<std::unique_ptr<ReqSketch<T, Compare>>> summaries_;
  uint64_t current_bound_ = 0;
  uint64_t n_ = 0;
  // Combined-view memoization (see CombinedView): the sorted weighted
  // run of every closed summary, merge scratch, the active/closed
  // summaries' per-entry weight scratch, and the published view
  // (rebuilt in place). Guarded by view_mutex_ behind the view_ready_
  // publication flag, exactly like ReqSketch's sorted-view cache.
  mutable std::vector<T> closed_items_;
  mutable std::vector<uint64_t> closed_weights_;
  mutable std::vector<T> scratch_items_;
  mutable std::vector<uint64_t> scratch_weights_;
  mutable std::vector<uint64_t> active_weights_;
  mutable size_t closed_cached_ = 0;
  mutable SortedView<T, Compare> view_;
  mutable detail::CopyableAtomicBool view_ready_;
  mutable detail::CopyableMutex view_mutex_;
};

}  // namespace req

#endif  // REQSKETCH_CORE_REQ_CHAIN_H_
