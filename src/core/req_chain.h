// The "simple" unknown-stream-length scheme of Section 5.
//
// Instead of regrowing parameters in place (which ReqSketch does, following
// footnote 9 and the Appendix D analysis), this scheme starts with an
// estimate N_0, and when the stream outgrows the current estimate N_i it
// "closes out" the current summary -- keeping it read-only -- and opens a
// fresh summary built for N_{i+1} = N_i^2. At most log2 log2(eps n)
// summaries ever exist, their sizes are geometrically dominated by the last
// one, and the rank estimate for y is the sum of the per-summary estimates
// (each sub-stream achieving relative error eps implies the total does).
//
// This class exists so the E8 bench can compare both schemes against the
// known-n baseline; for general use prefer ReqSketch, which additionally
// supports merging.
#ifndef REQSKETCH_CORE_REQ_CHAIN_H_
#define REQSKETCH_CORE_REQ_CHAIN_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/req_common.h"
#include "core/req_sketch.h"
#include "core/sorted_view.h"
#include "util/validation.h"

namespace req {

template <typename T, typename Compare = std::less<T>>
class ReqChain {
 public:
  explicit ReqChain(const ReqConfig& config = ReqConfig(),
                    Compare comp = Compare())
      : config_(config), comp_(comp) {
    params::ValidateConfig(config_);
    current_bound_ = params::InitialN(config_.k_base);
    OpenSummary();
  }

  bool is_empty() const { return n_ == 0; }
  uint64_t n() const { return n_; }

  // Number of summaries (closed + active); bounded by log2 log2 of the
  // stream length over N0.
  size_t num_summaries() const { return summaries_.size(); }

  size_t RetainedItems() const {
    size_t total = 0;
    for (const auto& s : summaries_) total += s->RetainedItems();
    return total;
  }

  void Update(const T& item) {
    // Section 5: when the *total* stream length reaches the current
    // estimate N_i, close out and open the next summary for N_{i+1}.
    if (n_ >= current_bound_) CloseOutAndGrow();
    summaries_.back()->Update(item);
    ++n_;
  }

  // Batch update: forwards run-length chunks to the active summary's batch
  // path, breaking exactly at every close-out boundary, so the resulting
  // chain is identical to the one built by single-item updates.
  void Update(const T* data, size_t count) {
    size_t i = 0;
    while (i < count) {
      if (n_ >= current_bound_) CloseOutAndGrow();
      const size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(count - i, current_bound_ - n_));
      summaries_.back()->Update(data + i, chunk);
      n_ += chunk;
      i += chunk;
    }
  }

  void Update(const std::vector<T>& items) {
    Update(items.data(), items.size());
  }

  // Rank estimate: sum of the per-summary estimates (Section 5).
  uint64_t GetRank(const T& y,
                   Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetRank() on an empty chain");
    uint64_t rank = 0;
    for (const auto& s : summaries_) {
      if (!s->is_empty()) rank += s->GetRank(y, criterion);
    }
    return rank;
  }

  double GetNormalizedRank(
      const T& y, Criterion criterion = Criterion::kInclusive) const {
    return static_cast<double>(GetRank(y, criterion)) /
           static_cast<double>(n_);
  }

  T GetQuantile(double q, Criterion criterion = Criterion::kInclusive) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty chain");
    // NaN-rejecting: validate before materializing the combined view.
    util::CheckArg(q >= 0.0 && q <= 1.0, "normalized rank must be in [0, 1]");
    std::vector<std::pair<T, uint64_t>> weighted;
    weighted.reserve(RetainedItems());
    uint64_t total_weight = 0;
    for (const auto& s : summaries_) {
      if (s->is_empty()) continue;
      s->AppendWeightedItems(&weighted);
      total_weight += s->TotalWeight();
    }
    SortedView<T, Compare> view(std::move(weighted), total_weight, comp_);
    return view.GetQuantile(q, criterion);
  }

 private:
  // Closes out the active summary (it stays read-only) and opens the next
  // one with the squared estimate.
  void CloseOutAndGrow() {
    current_bound_ = (current_bound_ >= (uint64_t{1} << 31))
                         ? params::kMaxN
                         : current_bound_ * current_bound_;
    OpenSummary();
  }

  void OpenSummary() {
    ReqConfig sub_config = config_;
    sub_config.n_hint = current_bound_;  // fixed-N summary (Theorem 14)
    // Derive a distinct deterministic seed per summary.
    sub_config.seed = config_.seed + 0x9e3779b97f4a7c15ULL *
                                         (summaries_.size() + 1);
    summaries_.push_back(
        std::make_unique<ReqSketch<T, Compare>>(sub_config, comp_));
  }

  ReqConfig config_;
  Compare comp_;
  std::vector<std::unique_ptr<ReqSketch<T, Compare>>> summaries_;
  uint64_t current_bound_ = 0;
  uint64_t n_ = 0;
};

}  // namespace req

#endif  // REQSKETCH_CORE_REQ_CHAIN_H_
