// Error-measurement harness: exact-rank oracle over a materialized stream,
// rank query grids, and aggregate error statistics. Shared by the test
// suite's statistical checks and by every bench binary.
#ifndef REQSKETCH_SIM_METRICS_H_
#define REQSKETCH_SIM_METRICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace req {
namespace sim {

// Exact ranks for a fixed multiset of values (the ground truth the paper's
// R(y) refers to). Construction sorts a copy: O(n log n) once, O(log n) per
// query.
class RankOracle {
 public:
  explicit RankOracle(std::vector<double> values);

  uint64_t n() const { return sorted_.size(); }
  // Number of stream items <= y.
  uint64_t RankInclusive(double y) const;
  // Number of stream items < y.
  uint64_t RankExclusive(double y) const;
  // The item of 1-based rank r (r in [1, n]).
  double ItemAtRank(uint64_t r) const;
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

// A grid of query ranks that is geometrically dense toward the accurate end
// (rank n for HRA, rank 1 for LRA): ranks n, n - 1, n - 2, n - 4, ... down
// to 1 (HRA), deduplicated and sorted ascending. This is where the
// multiplicative guarantee is hardest, so it is where the benches measure.
std::vector<uint64_t> GeometricRankGrid(uint64_t n, bool from_high_end,
                                        double growth = 1.5);

// Evenly spaced normalized ranks (0, 1], e.g. for CDF-style sweeps.
std::vector<uint64_t> UniformRankGrid(uint64_t n, size_t num_points);

// One measured query point.
struct RankErrorSample {
  uint64_t exact_rank = 0;      // R(y)
  uint64_t estimated_rank = 0;  // R-hat(y)
  double relative_error = 0.0;  // |R-hat - R| / max(1, R*) with R* measured
                                // from the accurate end
};

struct ErrorSummary {
  double max_relative_error = 0.0;
  double mean_relative_error = 0.0;
  double p95_relative_error = 0.0;
  double max_additive_error = 0.0;  // max |R-hat - R| / n
  size_t num_samples = 0;
};

ErrorSummary Summarize(const std::vector<RankErrorSample>& samples);

// Evaluates an arbitrary rank estimator against the oracle on a rank grid.
// `estimate_rank` maps an item y to the estimated number of items <= y.
// If `from_high_end` is true, relative error for an item of exact rank R is
// measured against n - R + 1 (the HRA guarantee |Err| <= eps (n - R));
// otherwise against R.
std::vector<RankErrorSample> EvaluateRankErrors(
    const RankOracle& oracle,
    const std::function<uint64_t(double)>& estimate_rank,
    const std::vector<uint64_t>& rank_grid, bool from_high_end);

}  // namespace sim
}  // namespace req

#endif  // REQSKETCH_SIM_METRICS_H_
