#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/validation.h"

namespace req {
namespace sim {

RankOracle::RankOracle(std::vector<double> values)
    : sorted_(std::move(values)) {
  util::CheckArg(!sorted_.empty(), "RankOracle requires non-empty input");
  std::sort(sorted_.begin(), sorted_.end());
}

uint64_t RankOracle::RankInclusive(double y) const {
  return static_cast<uint64_t>(
      std::upper_bound(sorted_.begin(), sorted_.end(), y) - sorted_.begin());
}

uint64_t RankOracle::RankExclusive(double y) const {
  return static_cast<uint64_t>(
      std::lower_bound(sorted_.begin(), sorted_.end(), y) - sorted_.begin());
}

double RankOracle::ItemAtRank(uint64_t r) const {
  util::CheckArg(r >= 1 && r <= sorted_.size(),
                 "rank out of range [1, n]");
  return sorted_[r - 1];
}

std::vector<uint64_t> GeometricRankGrid(uint64_t n, bool from_high_end,
                                        double growth) {
  util::CheckArg(n >= 1, "n must be >= 1");
  util::CheckArg(growth > 1.0, "growth must exceed 1");
  std::vector<uint64_t> grid;
  // Distances from the accurate end: 0, 1, 2, ~2*growth, ... < n.
  uint64_t distance = 0;
  double next = 1.0;
  while (distance < n) {
    grid.push_back(from_high_end ? n - distance : distance + 1);
    const uint64_t step_to =
        static_cast<uint64_t>(std::llround(next));
    distance = std::max(distance + 1, step_to);
    next = std::max(next * growth, next + 1.0);
  }
  // Always include the far end so the grid spans the full rank range.
  grid.push_back(from_high_end ? 1 : n);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

std::vector<uint64_t> UniformRankGrid(uint64_t n, size_t num_points) {
  util::CheckArg(n >= 1 && num_points >= 1, "need n >= 1, points >= 1");
  std::vector<uint64_t> grid;
  grid.reserve(num_points);
  for (size_t i = 1; i <= num_points; ++i) {
    const uint64_t r = static_cast<uint64_t>(
        std::llround(static_cast<double>(i) * n / num_points));
    grid.push_back(std::max<uint64_t>(1, std::min(n, r)));
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

ErrorSummary Summarize(const std::vector<RankErrorSample>& samples) {
  ErrorSummary summary;
  summary.num_samples = samples.size();
  if (samples.empty()) return summary;
  std::vector<double> rel;
  rel.reserve(samples.size());
  double sum = 0.0;
  uint64_t n_max = 0;
  double max_add = 0.0;
  for (const auto& s : samples) {
    rel.push_back(s.relative_error);
    sum += s.relative_error;
    summary.max_relative_error =
        std::max(summary.max_relative_error, s.relative_error);
    n_max = std::max(n_max, s.exact_rank);
    const double add =
        std::abs(static_cast<double>(s.estimated_rank) -
                 static_cast<double>(s.exact_rank));
    max_add = std::max(max_add, add);
  }
  summary.mean_relative_error = sum / static_cast<double>(samples.size());
  std::sort(rel.begin(), rel.end());
  summary.p95_relative_error = rel[static_cast<size_t>(
      0.95 * static_cast<double>(rel.size() - 1))];
  summary.max_additive_error =
      n_max > 0 ? max_add / static_cast<double>(n_max) : 0.0;
  return summary;
}

std::vector<RankErrorSample> EvaluateRankErrors(
    const RankOracle& oracle,
    const std::function<uint64_t(double)>& estimate_rank,
    const std::vector<uint64_t>& rank_grid, bool from_high_end) {
  std::vector<RankErrorSample> samples;
  samples.reserve(rank_grid.size());
  const uint64_t n = oracle.n();
  for (uint64_t r : rank_grid) {
    const double item = oracle.ItemAtRank(r);
    // The item at 1-based rank r may have duplicates; the exact inclusive
    // rank of the value is what the estimator is judged against.
    const uint64_t exact = oracle.RankInclusive(item);
    const uint64_t estimated = estimate_rank(item);
    RankErrorSample sample;
    sample.exact_rank = exact;
    sample.estimated_rank = estimated;
    const double denom = from_high_end
                             ? static_cast<double>(n - exact + 1)
                             : static_cast<double>(exact);
    sample.relative_error =
        std::abs(static_cast<double>(estimated) -
                 static_cast<double>(exact)) /
        std::max(1.0, denom);
    samples.push_back(sample);
  }
  return samples;
}

}  // namespace sim
}  // namespace req
