// Distributed-aggregation simulator for Theorem 3 (full mergeability).
//
// Splits a stream into m parts ("nodes"), builds one sketch per part, and
// combines them through a configurable merge topology. Theorem 3 promises
// the error guarantee holds for *arbitrary* sequences of merge operations;
// the E5 bench and the merge tests sweep these topologies and compare
// against single-stream processing.
#ifndef REQSKETCH_SIM_MERGE_TREE_H_
#define REQSKETCH_SIM_MERGE_TREE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/random.h"
#include "util/validation.h"

namespace req {
namespace sim {

enum class MergeTopology {
  kLeftDeep,   // ((s0 + s1) + s2) + ... : a streaming-aggregation chain
  kBalanced,   // pairwise rounds: the map-reduce combiner pattern
  kRandomTree, // random binary tree: adversarial "arbitrary" merges
  kSharded,    // one flat N-way merge: the concurrent shard-per-thread
               // merge-on-query pattern (concurrency/sharded_req_sketch.h)
};

inline constexpr MergeTopology kAllMergeTopologies[] = {
    MergeTopology::kLeftDeep, MergeTopology::kBalanced,
    MergeTopology::kRandomTree, MergeTopology::kSharded};

inline std::string TopologyName(MergeTopology topology) {
  switch (topology) {
    case MergeTopology::kLeftDeep:
      return "left-deep";
    case MergeTopology::kBalanced:
      return "balanced";
    case MergeTopology::kRandomTree:
      return "random-tree";
    case MergeTopology::kSharded:
      return "sharded";
  }
  return "unknown";
}

// Compile-time probe for the N-way pointer-array merge
// (Merge(const Sketch* const*, size_t)); baseline sketches that only have
// the pairwise API fall back to a left-deep chain under kSharded.
template <typename S, typename = void>
struct HasNWayMerge : std::false_type {};
template <typename S>
struct HasNWayMerge<
    S, std::void_t<decltype(std::declval<S&>().Merge(
           std::declval<const S* const*>(), size_t{0}))>> : std::true_type {
};

// Splits `values` into `parts` contiguous chunks (sizes differ by <= 1).
inline std::vector<std::vector<double>> SplitStream(
    const std::vector<double>& values, size_t parts) {
  util::CheckArg(parts >= 1, "parts must be >= 1");
  util::CheckArg(values.size() >= parts,
                 "cannot split into more parts than items");
  std::vector<std::vector<double>> out(parts);
  const size_t base = values.size() / parts;
  const size_t extra = values.size() % parts;
  size_t pos = 0;
  for (size_t p = 0; p < parts; ++p) {
    const size_t len = base + (p < extra ? 1 : 0);
    out[p].assign(values.begin() + pos, values.begin() + pos + len);
    pos += len;
  }
  return out;
}

// Builds one sketch per part with `make_sketch(part_index)`, feeds it the
// part's values, then merges all per-part sketches via the topology.
// Sketch must provide Update(double) and Merge(const Sketch&).
template <typename Sketch>
Sketch BuildAndMerge(const std::vector<std::vector<double>>& parts,
                     const std::function<Sketch(size_t)>& make_sketch,
                     MergeTopology topology, uint64_t seed = 1) {
  util::CheckArg(!parts.empty(), "need at least one part");
  std::deque<Sketch> sketches;
  for (size_t p = 0; p < parts.size(); ++p) {
    Sketch s = make_sketch(p);
    for (double v : parts[p]) s.Update(v);
    sketches.push_back(std::move(s));
  }
  switch (topology) {
    case MergeTopology::kLeftDeep: {
      Sketch acc = std::move(sketches.front());
      sketches.pop_front();
      while (!sketches.empty()) {
        acc.Merge(sketches.front());
        sketches.pop_front();
      }
      return acc;
    }
    case MergeTopology::kSharded: {
      // The merge-on-query shape of the sharded orchestrator: every
      // per-part sketch is a shard, and one flat N-way merge combines all
      // of them at once.
      Sketch acc = std::move(sketches.front());
      sketches.pop_front();
      if constexpr (HasNWayMerge<Sketch>::value) {
        std::vector<const Sketch*> sources;
        sources.reserve(sketches.size());
        for (const Sketch& s : sketches) sources.push_back(&s);
        acc.Merge(sources.data(), sources.size());
      } else {
        for (const Sketch& s : sketches) acc.Merge(s);
      }
      return acc;
    }
    case MergeTopology::kBalanced: {
      while (sketches.size() > 1) {
        std::deque<Sketch> next;
        while (sketches.size() >= 2) {
          Sketch a = std::move(sketches.front());
          sketches.pop_front();
          a.Merge(sketches.front());
          sketches.pop_front();
          next.push_back(std::move(a));
        }
        if (!sketches.empty()) {
          next.push_back(std::move(sketches.front()));
          sketches.pop_front();
        }
        sketches = std::move(next);
      }
      return std::move(sketches.front());
    }
    case MergeTopology::kRandomTree: {
      util::Xoshiro256 rng(seed);
      while (sketches.size() > 1) {
        const size_t i = static_cast<size_t>(
            rng.NextBounded(sketches.size()));
        size_t j = static_cast<size_t>(
            rng.NextBounded(sketches.size() - 1));
        if (j >= i) ++j;
        const size_t a = std::min(i, j);
        const size_t b = std::max(i, j);
        sketches[a].Merge(sketches[b]);
        sketches.erase(sketches.begin() + static_cast<ptrdiff_t>(b));
      }
      return std::move(sketches.front());
    }
  }
  util::CheckArg(false, "unknown merge topology");
  return make_sketch(0);  // unreachable
}

}  // namespace sim
}  // namespace req

#endif  // REQSKETCH_SIM_MERGE_TREE_H_
