#include "util/random.h"

#include <cmath>

namespace req {
namespace util {

namespace {

constexpr uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256::NextDouble() {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection in the biased zone.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

void Xoshiro256::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace util
}  // namespace req
