// Minimal binary serialization: little-endian, bounds-checked reader and an
// append-only writer over std::vector<uint8_t>. Used by req_serde.h to make
// sketches portable across processes (the distributed-merge scenario of
// Appendix D).
#ifndef REQSKETCH_UTIL_SERDE_H_
#define REQSKETCH_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/validation.h"

namespace req {
namespace util {

class BinaryWriter {
 public:
  BinaryWriter() = default;
  // Seeds the writer with an existing buffer and appends after its
  // current contents; Release() hands the (grown) buffer back. Lets a
  // caller encode many records into one reusable allocation.
  explicit BinaryWriter(std::vector<uint8_t>&& bytes)
      : bytes_(std::move(bytes)) {}

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "BinaryWriter requires trivially copyable types");
    const size_t offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    const size_t offset = bytes_.size();
    bytes_.resize(offset + s.size());
    std::memcpy(bytes_.data() + offset, s.data(), s.size());
  }

  // Length-prefixed write of a contiguous run; the span form lets callers
  // stream directly out of arena-backed storage without materializing a
  // vector first.
  template <typename T>
  void WriteArray(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "WriteArray requires trivially copyable types");
    Write<uint64_t>(count);
    const size_t offset = bytes_.size();
    bytes_.resize(offset + count * sizeof(T));
    if (count > 0) {
      std::memcpy(bytes_.data() + offset, data, count * sizeof(T));
    }
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    WriteArray<T>(values.data(), values.size());
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Release() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit BinaryReader(const std::vector<uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "BinaryReader requires trivially copyable types");
    CheckData(pos_ + sizeof(T) <= size_,
              "serialized sketch truncated: fixed-size field");
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string ReadString() {
    const uint64_t n = Read<uint64_t>();
    // Compare against the remaining byte count (never `pos_ + n`, which a
    // crafted length near 2^64 would wrap past the bounds check).
    CheckData(n <= size_ - pos_, "serialized sketch truncated: string");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  // Reads `count` items whose length prefix the caller has already read
  // (and possibly validated against domain invariants). The byte-level
  // bound is re-checked here before anything is allocated, so a crafted
  // count can never trigger an oversized allocation or an out-of-bounds
  // copy.
  template <typename T>
  std::vector<T> ReadArray(uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ReadArray requires trivially copyable types");
    CheckData(count <= (size_ - pos_) / sizeof(T),
              "serialized sketch truncated: array");
    std::vector<T> values(static_cast<size_t>(count));
    if (count > 0) {
      std::memcpy(values.data(), data_ + pos_, count * sizeof(T));
    }
    pos_ += count * sizeof(T);
    return values;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    return ReadArray<T>(Read<uint64_t>());
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace util
}  // namespace req

#endif  // REQSKETCH_UTIL_SERDE_H_
