// Deterministic, seedable pseudo-random number generation.
//
// The sketch needs only unbiased coin flips (Observation 4: the compaction
// keeps even- or odd-indexed items with equal probability), but the workload
// generators need uniform doubles, bounded integers, and Gaussians. We use
// SplitMix64 for seeding and Xoshiro256** as the main generator: tiny state,
// excellent statistical quality, and fully reproducible across platforms,
// which the tests and benches rely on.
#ifndef REQSKETCH_UTIL_RANDOM_H_
#define REQSKETCH_UTIL_RANDOM_H_

#include <array>
#include <cstdint>

namespace req {
namespace util {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0xdeadbeefcafef00dULL);

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return Next(); }

  uint64_t Next();

  // A single unbiased coin flip.
  bool NextBit() { return (Next() >> 63) != 0; }

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound); bound must be > 0. Uses Lemire's
  // nearly-divisionless method with rejection for exact uniformity.
  uint64_t NextBounded(uint64_t bound);

  // Standard Gaussian via Box-Muller (polar form); deterministic per seed.
  double NextGaussian();

  // Jump function: advances the state by 2^128 steps; used to derive
  // independent parallel substreams from a common seed.
  void Jump();

  // Exact generator state, for serializing a deterministically
  // continuable sketch (ReqSerde v2). Restoring the state drops any
  // cached Gaussian half-pair: raw 64-bit outputs (the only randomness
  // the sketch consumes) continue bit-identically; an interleaved
  // NextGaussian sequence may repeat one cached value.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
    has_cached_gaussian_ = false;
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace util
}  // namespace req

#endif  // REQSKETCH_UTIL_RANDOM_H_
