// Bit-manipulation helpers used by the compaction schedule (Algorithm 1) and
// by parameter derivations. All functions are constexpr and branch-light.
#ifndef REQSKETCH_UTIL_BITS_H_
#define REQSKETCH_UTIL_BITS_H_

#include <cstdint>

namespace req {
namespace util {

// Number of trailing one bits in the binary representation of x.
// This is z(C) in Algorithm 1 of the paper: the schedule compacts
// (z(C)+1) * k items during the (C+1)-st compaction.
constexpr int TrailingOnes(uint64_t x) {
  int count = 0;
  while (x & 1u) {
    ++count;
    x >>= 1;
  }
  return count;
}

// Floor of log2(x); x must be >= 1. FloorLog2(1) == 0.
constexpr int FloorLog2(uint64_t x) {
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

// Ceiling of log2(x); x must be >= 1. CeilLog2(1) == 0.
constexpr int CeilLog2(uint64_t x) {
  if (x <= 1) return 0;
  return FloorLog2(x - 1) + 1;
}

// Smallest power of two >= x (x must be >= 1 and representable).
constexpr uint64_t NextPow2(uint64_t x) {
  return uint64_t{1} << CeilLog2(x);
}

// True if x is a power of two (x >= 1).
constexpr bool IsPow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Number of one bits.
constexpr int Popcount(uint64_t x) {
  int count = 0;
  while (x) {
    x &= x - 1;
    ++count;
  }
  return count;
}

}  // namespace util
}  // namespace req

#endif  // REQSKETCH_UTIL_BITS_H_
