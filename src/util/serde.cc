#include "util/serde.h"

// Header-only implementation; this translation unit exists so the library
// target owns the header and IWYU checks compile it standalone.
