// Argument validation helpers. API misuse (bad parameters, querying an empty
// sketch, merging incompatible sketches) reports via exceptions, matching the
// convention of other open-source sketch libraries; internal invariants use
// assert-style checks compiled out of release builds.
#ifndef REQSKETCH_UTIL_VALIDATION_H_
#define REQSKETCH_UTIL_VALIDATION_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace req {
namespace util {

// Throws std::invalid_argument with the given message if cond is false.
// The const char* overloads keep the passing path allocation-free: the
// std::string overloads would otherwise construct (and for messages beyond
// the small-string optimization, heap-allocate) a temporary on every call,
// which is measurable in per-item hot paths like Update and GetRank.
inline void CheckArg(bool cond, const char* message) {
  if (!cond) throw std::invalid_argument(message);
}
inline void CheckArg(bool cond, const std::string& message) {
  if (!cond) throw std::invalid_argument(message);
}

// Throws std::logic_error: used for operations invalid in the current state
// (e.g., quantile query on an empty sketch).
inline void CheckState(bool cond, const char* message) {
  if (!cond) throw std::logic_error(message);
}
inline void CheckState(bool cond, const std::string& message) {
  if (!cond) throw std::logic_error(message);
}

// Throws std::runtime_error: used for corrupt serialized data.
inline void CheckData(bool cond, const char* message) {
  if (!cond) throw std::runtime_error(message);
}
inline void CheckData(bool cond, const std::string& message) {
  if (!cond) throw std::runtime_error(message);
}

// Builds "name=value" fragments for error messages.
template <typename T>
std::string DescribeValue(const char* name, const T& value) {
  std::ostringstream os;
  os << name << "=" << value;
  return os.str();
}

}  // namespace util
}  // namespace req

#endif  // REQSKETCH_UTIL_VALIDATION_H_
