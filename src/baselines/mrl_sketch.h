// Manku-Rajagopalan-Lindsay-style uniform buffer-collapse sketch
// (SIGMOD 1998; the paper's reference [13]), building on Munro-Paterson.
//
// Maintains buffers of k items each, every buffer carrying a weight. When
// two buffers of equal weight exist they COLLAPSE: merge the two sorted
// k-item runs and keep every other element of the 2k-merge (alternating
// offset), producing one buffer of doubled weight -- the classic
// deterministic additive-error scheme storing O(k log(n/k)) items with
// error O(n log(n/k) / k).
#ifndef REQSKETCH_BASELINES_MRL_SKETCH_H_
#define REQSKETCH_BASELINES_MRL_SKETCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/validation.h"

namespace req {
namespace baselines {

class MrlSketch {
 public:
  explicit MrlSketch(size_t k) : k_(k) {
    util::CheckArg(k >= 2 && k % 2 == 0, "MRL k must be even and >= 2");
  }

  void Update(double value) {
    active_.push_back(value);
    ++n_;
    if (active_.size() == k_) {
      std::sort(active_.begin(), active_.end());
      buffers_.push_back(Buffer{1, std::move(active_)});
      active_.clear();
      CollapseEqualWeights();
    }
  }

  uint64_t n() const { return n_; }
  bool is_empty() const { return n_ == 0; }

  size_t RetainedItems() const {
    size_t total = active_.size();
    for (const auto& b : buffers_) total += b.items.size();
    return total;
  }

  size_t num_buffers() const { return buffers_.size() + 1; }

  // Estimated number of stream items <= y.
  uint64_t GetRank(double y) const {
    util::CheckState(n_ > 0, "GetRank() on an empty sketch");
    uint64_t rank = 0;
    for (double x : active_) {
      if (x <= y) ++rank;
    }
    for (const auto& b : buffers_) {
      const uint64_t count = static_cast<uint64_t>(
          std::upper_bound(b.items.begin(), b.items.end(), y) -
          b.items.begin());
      rank += count * b.weight;
    }
    return rank;
  }

  double GetQuantile(double q) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty sketch");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    std::vector<std::pair<double, uint64_t>> weighted;
    weighted.reserve(RetainedItems());
    uint64_t total = 0;
    for (double x : active_) {
      weighted.emplace_back(x, 1);
      ++total;
    }
    for (const auto& b : buffers_) {
      for (double x : b.items) {
        weighted.emplace_back(x, b.weight);
        total += b.weight;
      }
    }
    std::sort(weighted.begin(), weighted.end());
    const double target = q * static_cast<double>(total);
    uint64_t cum = 0;
    for (const auto& [value, weight] : weighted) {
      cum += weight;
      if (static_cast<double>(cum) >= target) return value;
    }
    return weighted.back().first;
  }

 private:
  struct Buffer {
    uint64_t weight = 1;
    std::vector<double> items;  // sorted
  };

  void CollapseEqualWeights() {
    bool collapsed = true;
    while (collapsed) {
      collapsed = false;
      for (size_t i = 0; i < buffers_.size() && !collapsed; ++i) {
        for (size_t j = i + 1; j < buffers_.size(); ++j) {
          if (buffers_[i].weight == buffers_[j].weight) {
            Collapse(i, j);
            collapsed = true;
            break;
          }
        }
      }
    }
  }

  void Collapse(size_t i, size_t j) {
    std::vector<double> merged(buffers_[i].items.size() +
                               buffers_[j].items.size());
    std::merge(buffers_[i].items.begin(), buffers_[i].items.end(),
               buffers_[j].items.begin(), buffers_[j].items.end(),
               merged.begin());
    // Alternate the collapse offset deterministically: the MRL analysis
    // pairs odd and even collapses so positional bias cancels.
    std::vector<double> kept;
    kept.reserve(merged.size() / 2);
    for (size_t m = collapse_parity_ ? 1 : 0; m < merged.size(); m += 2) {
      kept.push_back(merged[m]);
    }
    collapse_parity_ = !collapse_parity_;
    buffers_[i].weight *= 2;
    buffers_[i].items = std::move(kept);
    buffers_.erase(buffers_.begin() + static_cast<ptrdiff_t>(j));
  }

  size_t k_;
  std::vector<double> active_;
  std::vector<Buffer> buffers_;
  uint64_t n_ = 0;
  bool collapse_parity_ = false;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_MRL_SKETCH_H_
