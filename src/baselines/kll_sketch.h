// KLL sketch (Karnin, Lang, Liberty, FOCS 2016; the paper's reference [12]):
// the optimal *additive*-error streaming quantiles sketch, and the design
// the REQ sketch builds on. Reimplemented from the published description.
//
// Structure: a stack of buffers where level h holds items of weight 2^h and
// has capacity k * c^(depth-from-top), c = 2/3, floored at a small minimum.
// When total size exceeds total capacity, the lowest over-full level is
// sorted and every other item (random offset) is promoted. Additive error
// is O(n / k) at all ranks; there is no multiplicative guarantee, which is
// precisely what the E1/E4 benches show at tail ranks.
#ifndef REQSKETCH_BASELINES_KLL_SKETCH_H_
#define REQSKETCH_BASELINES_KLL_SKETCH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/validation.h"

namespace req {
namespace baselines {

class KllSketch {
 public:
  explicit KllSketch(uint32_t k = 200, uint64_t seed = 1)
      : k_(k), rng_(seed) {
    util::CheckArg(k >= 8, "KLL k must be >= 8");
    levels_.emplace_back();
  }

  void Update(double value) {
    levels_[0].push_back(value);
    ++n_;
    if (TotalSize() > TotalCapacity()) Compress();
  }

  // Batch update mirroring ReqSketch's hot-path API (used by the E13 bench
  // for like-for-like comparisons): bulk-appends into level 0 and runs the
  // compression check once per fill instead of once per item.
  void Update(const double* data, size_t count) {
    size_t i = 0;
    while (i < count) {
      const size_t total_size = TotalSize();
      const size_t total_cap = TotalCapacity();
      const size_t room =
          total_cap > total_size ? total_cap - total_size + 1 : 1;
      const size_t chunk = std::min(count - i, room);
      levels_[0].insert(levels_[0].end(), data + i, data + i + chunk);
      n_ += chunk;
      i += chunk;
      if (TotalSize() > TotalCapacity()) Compress();
    }
  }

  void Update(const std::vector<double>& values) {
    Update(values.data(), values.size());
  }

  void Merge(const KllSketch& other) {
    util::CheckArg(this != &other, "cannot merge a sketch into itself");
    while (levels_.size() < other.levels_.size()) levels_.emplace_back();
    for (size_t h = 0; h < other.levels_.size(); ++h) {
      levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                        other.levels_[h].end());
    }
    n_ += other.n_;
    while (TotalSize() > TotalCapacity()) Compress();
  }

  uint64_t n() const { return n_; }
  bool is_empty() const { return n_ == 0; }
  uint32_t k() const { return k_; }

  size_t RetainedItems() const { return TotalSize(); }
  size_t num_levels() const { return levels_.size(); }

  // Estimated number of stream items <= y.
  uint64_t GetRank(double y) const {
    util::CheckState(n_ > 0, "GetRank() on an empty sketch");
    uint64_t rank = 0;
    for (size_t h = 0; h < levels_.size(); ++h) {
      uint64_t count = 0;
      for (double x : levels_[h]) {
        if (x <= y) ++count;
      }
      rank += count << h;
    }
    return rank;
  }

  double GetNormalizedRank(double y) const {
    return static_cast<double>(GetRank(y)) / static_cast<double>(n_);
  }

  double GetQuantile(double q) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty sketch");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    std::vector<std::pair<double, uint64_t>> weighted;
    weighted.reserve(TotalSize());
    uint64_t total = 0;
    for (size_t h = 0; h < levels_.size(); ++h) {
      for (double x : levels_[h]) {
        weighted.emplace_back(x, uint64_t{1} << h);
        total += uint64_t{1} << h;
      }
    }
    std::sort(weighted.begin(), weighted.end());
    const double target = q * static_cast<double>(total);
    uint64_t cum = 0;
    for (const auto& [value, weight] : weighted) {
      cum += weight;
      if (static_cast<double>(cum) >= target) return value;
    }
    return weighted.back().first;
  }

 private:
  // Capacity of level h when the sketch currently has H levels:
  // k * c^(H-1-h), floored at kMinWidth.
  size_t LevelCapacity(size_t h) const {
    static constexpr double kC = 2.0 / 3.0;
    static constexpr size_t kMinWidth = 8;
    const int depth = static_cast<int>(levels_.size()) - 1 -
                      static_cast<int>(h);
    const double cap = static_cast<double>(k_) * std::pow(kC, depth);
    return std::max(kMinWidth, static_cast<size_t>(std::ceil(cap)));
  }

  size_t TotalSize() const {
    size_t total = 0;
    for (const auto& level : levels_) total += level.size();
    return total;
  }

  size_t TotalCapacity() const {
    size_t total = 0;
    for (size_t h = 0; h < levels_.size(); ++h) total += LevelCapacity(h);
    return total;
  }

  // Compacts the lowest level exceeding its capacity (KLL's lazy policy).
  void Compress() {
    for (size_t h = 0; h < levels_.size(); ++h) {
      if (levels_[h].size() < LevelCapacity(h) || levels_[h].size() < 2) {
        continue;
      }
      if (h + 1 == levels_.size()) levels_.emplace_back();
      // Note: take the reference only after any emplace_back above, which
      // may reallocate the level vector.
      std::vector<double>& level = levels_[h];
      std::sort(level.begin(), level.end());
      const size_t offset = rng_.NextBit() ? 1 : 0;
      // Promote every other item; an odd leftover stays at this level so
      // total weight is conserved exactly.
      const size_t even_count = level.size() & ~size_t{1};
      for (size_t i = offset; i < even_count; i += 2) {
        levels_[h + 1].push_back(level[i]);
      }
      if (level.size() > even_count) {
        const double leftover = level.back();
        level.clear();
        level.push_back(leftover);
      } else {
        level.clear();
      }
      return;
    }
  }

  uint32_t k_;
  util::Xoshiro256 rng_;
  std::vector<std::vector<double>> levels_;
  uint64_t n_ = 0;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_KLL_SKETCH_H_
