// Ground-truth "sketch": stores every item. Used as the accuracy oracle and
// as the throughput lower bar in E10. Linear space, obviously.
#ifndef REQSKETCH_BASELINES_EXACT_QUANTILES_H_
#define REQSKETCH_BASELINES_EXACT_QUANTILES_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/validation.h"

namespace req {
namespace baselines {

class ExactQuantiles {
 public:
  void Update(double value) {
    values_.push_back(value);
    sorted_ = false;
  }

  // Batch update mirroring the sketch API.
  void Update(const double* data, size_t count) {
    values_.insert(values_.end(), data, data + count);
    if (count > 0) sorted_ = false;
  }

  void Update(const std::vector<double>& values) {
    Update(values.data(), values.size());
  }

  void Merge(const ExactQuantiles& other) {
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
    sorted_ = false;
  }

  uint64_t n() const { return values_.size(); }
  bool is_empty() const { return values_.empty(); }
  size_t RetainedItems() const { return values_.size(); }

  // Number of items <= y.
  uint64_t GetRank(double y) const {
    EnsureSorted();
    return static_cast<uint64_t>(
        std::upper_bound(values_.begin(), values_.end(), y) -
        values_.begin());
  }

  double GetQuantile(double q) const {
    util::CheckState(!values_.empty(), "GetQuantile() on empty data");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    EnsureSorted();
    const size_t idx = std::min(
        values_.size() - 1,
        static_cast<size_t>(q * static_cast<double>(values_.size())));
    return values_[idx];
  }

 private:
  void EnsureSorted() const {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_EXACT_QUANTILES_H_
