// Universe-based deterministic biased-quantiles sketch in the style of
// Cormode, Korn, Muthukrishnan, Srivastava (PODS 2006; the paper's
// reference [5]): a binary (dyadic) tree over a *known, bounded* integer
// universe [0, 2^log_universe), storing per-node counts and pruning nodes
// whose count is small relative to the rank below them. Space is
// O(eps^-1 log(eps n) log |U|) and the rank guarantee is multiplicative --
// but the structure is inapplicable when the universe is unknown, huge, or
// real-valued, which is exactly the limitation Section 1 of the REQ paper
// calls out (and the reason the comparison matters in E3/E4).
//
// Implementation notes: counts live in a hash map keyed by (level,
// prefix); a periodic bottom-up COMPRESS folds any node whose count is at
// most eps * rank_below / log|U| into its parent (a q-digest-style rule
// with a *relative* threshold). A rank query sums all nodes whose range
// begins at or below y; the <= log|U| straddling nodes each contribute at
// most their (threshold-bounded) count of error, totalling <= eps * R(y).
#ifndef REQSKETCH_BASELINES_DYADIC_UNIVERSE_SKETCH_H_
#define REQSKETCH_BASELINES_DYADIC_UNIVERSE_SKETCH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/validation.h"

namespace req {
namespace baselines {

class DyadicUniverseSketch {
 public:
  DyadicUniverseSketch(double eps, uint32_t log_universe)
      : eps_(eps), log_universe_(log_universe) {
    util::CheckArg(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    util::CheckArg(log_universe >= 1 && log_universe <= 40,
                   "log_universe must be in [1, 40]");
    compress_period_ = std::max<uint64_t>(
        256, static_cast<uint64_t>(4.0 * log_universe_ / eps_));
  }

  // Values must lie in [0, 2^log_universe).
  void Update(uint64_t value) {
    util::CheckArg(value < (uint64_t{1} << log_universe_),
                   "value outside the declared universe");
    ++counts_[{0, value}];
    ++n_;
    if (n_ % compress_period_ == 0) Compress();
  }

  uint64_t n() const { return n_; }
  bool is_empty() const { return n_ == 0; }
  size_t RetainedItems() const { return counts_.size(); }

  // Estimated number of stream items <= y.
  uint64_t GetRank(uint64_t y) const {
    util::CheckState(n_ > 0, "GetRank() on an empty sketch");
    uint64_t rank = 0;
    for (const auto& [node, count] : counts_) {
      const uint64_t start = node.second << node.first;
      if (start <= y) rank += count;
    }
    return std::min(rank, n_);
  }

  uint64_t GetQuantile(double q) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty sketch");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    // Nodes sorted by range start (map order is (level, prefix); re-sort).
    std::vector<std::pair<uint64_t, uint64_t>> by_start;  // (start, count)
    by_start.reserve(counts_.size());
    for (const auto& [node, count] : counts_) {
      by_start.emplace_back(node.second << node.first, count);
    }
    std::sort(by_start.begin(), by_start.end());
    const double target = std::max(1.0, q * static_cast<double>(n_));
    uint64_t cum = 0;
    for (const auto& [start, count] : by_start) {
      cum += count;
      if (static_cast<double>(cum) >= target) return start;
    }
    return by_start.back().first;
  }

  // Public so tests can force a compression and check the space bound.
  void Compress() {
    // Bottom-up: fold small nodes into their parents. The threshold for a
    // node is eps * (rank strictly below its range) / log|U|, evaluated
    // against a snapshot of the pre-compression rank function.
    for (uint32_t level = 0; level + 1 <= log_universe_; ++level) {
      // Snapshot: cumulative counts by range end, for RankBelow queries.
      std::vector<std::pair<uint64_t, uint64_t>> ends;  // (range end, count)
      ends.reserve(counts_.size());
      for (const auto& [node, count] : counts_) {
        ends.emplace_back((node.second + 1) << node.first, count);
      }
      std::sort(ends.begin(), ends.end());
      // Prefix sums so RankBelow is a binary search.
      std::vector<uint64_t> cum(ends.size() + 1, 0);
      for (size_t i = 0; i < ends.size(); ++i) {
        cum[i + 1] = cum[i] + ends[i].second;
      }
      std::vector<std::pair<uint64_t, uint64_t>> moves;  // (parent prefix, count)
      for (auto it = counts_.begin(); it != counts_.end();) {
        const auto& [node, count] = *it;
        if (node.first != level) {
          ++it;
          continue;
        }
        // Threshold must be relative to the rank below the *parent's*
        // range start: folding moves the count into the parent, whose
        // range may begin below this node's. Bounding by the parent-start
        // rank keeps the migrated mass at <= eps R(y) / (2 log|U|) for any
        // query y inside the parent, so the <= 2 log|U| contributing nodes
        // total at most eps R(y) of error.
        const uint64_t parent_start = (node.second >> 1) << (level + 1);
        const auto pos = std::upper_bound(
            ends.begin(), ends.end(),
            std::make_pair(parent_start, ~uint64_t{0}));
        const uint64_t below = cum[static_cast<size_t>(pos - ends.begin())];
        const double threshold =
            eps_ * std::max<double>(1.0, static_cast<double>(below)) /
            (2.0 * static_cast<double>(log_universe_));
        if (static_cast<double>(count) <= threshold) {
          moves.emplace_back(node.second >> 1, count);
          it = counts_.erase(it);
        } else {
          ++it;
        }
      }
      for (const auto& [parent_prefix, count] : moves) {
        counts_[{level + 1, parent_prefix}] += count;
      }
    }
  }

 private:
  double eps_;
  uint32_t log_universe_;
  uint64_t compress_period_;
  // (level, prefix) -> count; a node covers [prefix << level,
  // (prefix + 1) << level).
  std::map<std::pair<uint32_t, uint64_t>, uint64_t> counts_;
  uint64_t n_ = 0;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_DYADIC_UNIVERSE_SKETCH_H_
