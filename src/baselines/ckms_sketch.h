// CKMS biased-quantiles sketch (Cormode, Korn, Muthukrishnan, Srivastava,
// ICDE 2005; the paper's reference [4]). A GK-style tuple summary whose
// uncertainty budget is *rank-proportional*, f(r, n) = max(2 eps r, 1),
// giving relative-error rank estimates at low ranks.
//
// Zhang et al. [22] observed -- and Section 1.1 of the REQ paper repeats --
// that under adversarial item ordering this structure degenerates to
// *linear* space: arriving below all previous items leaves a tolerance of
// f(1) ~ 1, so nothing ever merges. The E6 bench reproduces that blowup;
// the REQ sketch is immune by design.
#ifndef REQSKETCH_BASELINES_CKMS_SKETCH_H_
#define REQSKETCH_BASELINES_CKMS_SKETCH_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/validation.h"

namespace req {
namespace baselines {

class CkmsSketch {
 public:
  explicit CkmsSketch(double eps) : eps_(eps) {
    util::CheckArg(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    compress_period_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::floor(1.0 / (2.0 * eps_))));
  }

  void Update(double value) {
    ++n_;
    size_t pos = 0;
    uint64_t rank_before = 0;  // r_min of the tuple preceding insertion
    while (pos < tuples_.size() && tuples_[pos].v <= value) {
      rank_before += tuples_[pos].g;
      ++pos;
    }
    Tuple t;
    t.v = value;
    t.g = 1;
    t.delta = (pos == 0 || pos == tuples_.size())
                  ? 0
                  : static_cast<uint64_t>(
                        std::max(0.0, std::floor(Budget(rank_before)) - 1.0));
    tuples_.insert(tuples_.begin() + static_cast<ptrdiff_t>(pos), t);
    if (n_ % compress_period_ == 0) Compress();
  }

  uint64_t n() const { return n_; }
  bool is_empty() const { return n_ == 0; }
  size_t RetainedItems() const { return tuples_.size(); }

  // Estimated number of stream items <= y; relative error ~eps at low
  // ranks for benign input orders.
  uint64_t GetRank(double y) const {
    util::CheckState(n_ > 0, "GetRank() on an empty sketch");
    uint64_t r_min = 0;
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (tuples_[i].v > y) {
        if (i == 0) return 0;
        return r_min + (tuples_[i].g + tuples_[i].delta) / 2;
      }
      r_min += tuples_[i].g;
    }
    return n_;
  }

  double GetQuantile(double q) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty sketch");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    const double target = q * static_cast<double>(n_);
    uint64_t r_min = 0;
    for (size_t i = 0; i < tuples_.size(); ++i) {
      r_min += tuples_[i].g;
      if (static_cast<double>(r_min) +
              static_cast<double>(tuples_[i].delta) >=
          target * (1.0 + eps_)) {
        return tuples_[i].v;
      }
    }
    return tuples_.back().v;
  }

 private:
  struct Tuple {
    double v = 0.0;
    uint64_t g = 0;
    uint64_t delta = 0;
  };

  // The biased-quantiles invariant function f(r, n) = max(2 eps r, 1).
  double Budget(uint64_t rank) const {
    return std::max(2.0 * eps_ * static_cast<double>(rank), 1.0);
  }

  void Compress() {
    if (tuples_.size() < 3) return;
    std::vector<Tuple> out;
    out.reserve(tuples_.size());
    out.push_back(tuples_.front());
    uint64_t pending_g = 0;
    uint64_t r_min = tuples_.front().g;
    for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
      const Tuple& cur = tuples_[i];
      const Tuple& next = tuples_[i + 1];
      if (static_cast<double>(pending_g + cur.g + next.g + next.delta) <=
          Budget(r_min)) {
        pending_g += cur.g;
      } else {
        Tuple kept = cur;
        kept.g += pending_g;
        pending_g = 0;
        out.push_back(kept);
      }
      r_min += cur.g;
    }
    Tuple last = tuples_.back();
    last.g += pending_g;
    out.push_back(last);
    tuples_ = std::move(out);
  }

  double eps_;
  uint64_t compress_period_;
  std::vector<Tuple> tuples_;
  uint64_t n_ = 0;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_CKMS_SKETCH_H_
