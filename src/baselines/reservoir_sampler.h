// Uniform reservoir sampling (Vitter's Algorithm R) as a quantile
// estimator. The paper (Section 1) notes that a uniform sample of
// O(eps^-2 log(1/eps)) items yields *additive* eps n error, but no o(n)
// sample achieves multiplicative error -- the E1/E4 benches demonstrate
// exactly that failure at tail ranks.
#ifndef REQSKETCH_BASELINES_RESERVOIR_SAMPLER_H_
#define REQSKETCH_BASELINES_RESERVOIR_SAMPLER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/validation.h"

namespace req {
namespace baselines {

class ReservoirSampler {
 public:
  explicit ReservoirSampler(size_t capacity, uint64_t seed = 1)
      : capacity_(capacity), rng_(seed) {
    util::CheckArg(capacity >= 1, "reservoir capacity must be >= 1");
    sample_.reserve(capacity);
  }

  void Update(double value) {
    ++n_;
    if (sample_.size() < capacity_) {
      sample_.push_back(value);
      return;
    }
    const uint64_t j = rng_.NextBounded(n_);
    if (j < capacity_) sample_[j] = value;
  }

  uint64_t n() const { return n_; }
  bool is_empty() const { return n_ == 0; }
  size_t RetainedItems() const { return sample_.size(); }

  // Estimated number of stream items <= y: scaled sample rank.
  uint64_t GetRank(double y) const {
    util::CheckState(n_ > 0, "GetRank() on an empty sampler");
    uint64_t count = 0;
    for (double x : sample_) {
      if (x <= y) ++count;
    }
    return static_cast<uint64_t>(static_cast<double>(count) /
                                 static_cast<double>(sample_.size()) *
                                 static_cast<double>(n_));
  }

  double GetQuantile(double q) const {
    util::CheckState(!sample_.empty(), "GetQuantile() on an empty sampler");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    std::vector<double> sorted = sample_;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q * static_cast<double>(sorted.size())));
    return sorted[idx];
  }

 private:
  size_t capacity_;
  util::Xoshiro256 rng_;
  std::vector<double> sample_;
  uint64_t n_ = 0;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_RESERVOIR_SAMPLER_H_
