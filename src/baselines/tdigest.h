// t-digest (Dunning & Ertl; the paper's reference [7]): the widely deployed
// *heuristic* for accurate tail quantiles. Merging variant with the k1
// scale function k(q) = (delta / 2 pi) asin(2q - 1), which bounds centroid
// sizes tightly near q = 0 and q = 1.
//
// As Section 1.1 notes, t-digest ships no formal accuracy guarantee; the E4
// bench measures how it actually behaves next to the REQ sketch.
#ifndef REQSKETCH_BASELINES_TDIGEST_H_
#define REQSKETCH_BASELINES_TDIGEST_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/validation.h"

namespace req {
namespace baselines {

class TDigest {
 public:
  explicit TDigest(double compression = 100.0)
      : compression_(compression) {
    util::CheckArg(compression >= 10.0, "compression must be >= 10");
    buffer_.reserve(BufferCapacity());
  }

  void Update(double value) {
    util::CheckArg(!std::isnan(value), "cannot update t-digest with NaN");
    if (n_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    buffer_.push_back(value);
    ++n_;
    if (buffer_.size() >= BufferCapacity()) Flush();
  }

  void Merge(const TDigest& other) {
    util::CheckArg(this != &other, "cannot merge a digest into itself");
    if (other.n_ == 0) return;
    if (n_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    for (const Centroid& c : other.centroids_) {
      pending_.push_back(c);
    }
    for (double v : other.buffer_) buffer_.push_back(v);
    n_ += other.n_;
    Flush();
  }

  uint64_t n() const { return n_; }
  bool is_empty() const { return n_ == 0; }

  size_t RetainedItems() const {
    return centroids_.size() + buffer_.size() + pending_.size();
  }

  // Estimated number of stream items <= y (piecewise-linear CDF through
  // centroid midpoints).
  uint64_t GetRank(double y) const {
    util::CheckState(n_ > 0, "GetRank() on an empty digest");
    const_cast<TDigest*>(this)->Flush();
    if (y < min_) return 0;
    if (y >= max_) return n_;
    // Piecewise-linear CDF through the points (min, 0),
    // (mean_i, cum_i + count_i/2) for each centroid, (max, n).
    double prev_x = min_;
    double prev_cdf = 0.0;
    double cum = 0.0;
    for (const Centroid& c : centroids_) {
      const double x = c.mean;
      const double cdf = cum + static_cast<double>(c.count) / 2.0;
      if (y < x) {
        const double span = x - prev_x;
        const double frac = span > 0.0 ? (y - prev_x) / span : 1.0;
        return static_cast<uint64_t>(prev_cdf + frac * (cdf - prev_cdf));
      }
      prev_x = x;
      prev_cdf = cdf;
      cum += static_cast<double>(c.count);
    }
    const double span = max_ - prev_x;
    const double frac = span > 0.0 ? (y - prev_x) / span : 1.0;
    return static_cast<uint64_t>(
        prev_cdf + frac * (static_cast<double>(n_) - prev_cdf));
  }

  double GetQuantile(double q) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty digest");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    const_cast<TDigest*>(this)->Flush();
    if (q == 0.0) return min_;
    if (q == 1.0) return max_;
    const double target = q * static_cast<double>(n_);
    double cum = 0.0;
    for (size_t i = 0; i < centroids_.size(); ++i) {
      const Centroid& c = centroids_[i];
      const double half = static_cast<double>(c.count) / 2.0;
      if (target <= cum + static_cast<double>(c.count)) {
        // Interpolate between neighboring centroid means.
        const double lo_mean = (i == 0) ? min_ : centroids_[i - 1].mean;
        const double hi_mean =
            (i + 1 == centroids_.size()) ? max_ : centroids_[i + 1].mean;
        const double pos = target - cum;  // within [0, count]
        if (pos < half) {
          const double frac = half > 0 ? pos / half : 0.0;
          return lo_mean + (c.mean - lo_mean) * frac;
        }
        const double frac = half > 0 ? (pos - half) / half : 0.0;
        return c.mean + (hi_mean - c.mean) * std::min(1.0, frac);
      }
      cum += static_cast<double>(c.count);
    }
    return max_;
  }

 private:
  struct Centroid {
    double mean = 0.0;
    uint64_t count = 0;
    bool operator<(const Centroid& other) const { return mean < other.mean; }
  };

  size_t BufferCapacity() const {
    return static_cast<size_t>(10.0 * compression_);
  }

  // k1 scale function.
  double ScaleK(double q) const {
    return compression_ / (2.0 * M_PI) * std::asin(2.0 * q - 1.0);
  }

  void Flush() {
    if (buffer_.empty() && pending_.empty()) return;
    std::vector<Centroid> incoming = std::move(pending_);
    pending_.clear();
    for (double v : buffer_) incoming.push_back(Centroid{v, 1});
    buffer_.clear();
    incoming.insert(incoming.end(), centroids_.begin(), centroids_.end());
    std::sort(incoming.begin(), incoming.end());
    centroids_.clear();
    if (incoming.empty()) return;

    uint64_t total = 0;
    for (const Centroid& c : incoming) total += c.count;

    Centroid current = incoming.front();
    double q0 = 0.0;
    double cum = 0.0;
    for (size_t i = 1; i < incoming.size(); ++i) {
      const Centroid& next = incoming[i];
      const double q2 =
          (cum + static_cast<double>(current.count + next.count)) /
          static_cast<double>(total);
      if (ScaleK(q2) - ScaleK(q0) <= 1.0) {
        // Absorb next into current (weighted mean).
        const double w1 = static_cast<double>(current.count);
        const double w2 = static_cast<double>(next.count);
        current.mean = (current.mean * w1 + next.mean * w2) / (w1 + w2);
        current.count += next.count;
      } else {
        cum += static_cast<double>(current.count);
        q0 = cum / static_cast<double>(total);
        centroids_.push_back(current);
        current = next;
      }
    }
    centroids_.push_back(current);
  }

  double compression_;
  std::vector<Centroid> centroids_;  // sorted by mean
  std::vector<Centroid> pending_;    // from merges, awaiting flush
  std::vector<double> buffer_;
  uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_TDIGEST_H_
