// DDSketch (Masson, Rim, Lee, VLDB 2019; the paper's reference [15]).
//
// Geometric value buckets: positive value x maps to bucket
// ceil(log_gamma(x)) with gamma = (1 + alpha) / (1 - alpha), so returning
// the bucket midpoint guarantees *relative VALUE error* alpha. Section 1.1
// of the REQ paper stresses that this is a different (and weaker) notion
// than relative RANK error: it needs numeric data, is not invariant under
// shifting the data, and says nothing about how wrong the reported rank
// can be. The E4 bench measures its rank error next to the REQ sketch.
//
// This implementation supports positive values plus an explicit zero
// bucket (sufficient for all our workloads), with optional lowest-bucket
// collapsing to cap memory like the paper's bounded-size variant.
#ifndef REQSKETCH_BASELINES_DDSKETCH_H_
#define REQSKETCH_BASELINES_DDSKETCH_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

#include "util/validation.h"

namespace req {
namespace baselines {

class DdSketch {
 public:
  explicit DdSketch(double alpha, size_t max_buckets = 2048)
      : alpha_(alpha), max_buckets_(max_buckets) {
    util::CheckArg(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    util::CheckArg(max_buckets >= 16, "max_buckets must be >= 16");
    gamma_ = (1.0 + alpha) / (1.0 - alpha);
    log_gamma_ = std::log(gamma_);
  }

  void Update(double value) {
    util::CheckArg(!std::isnan(value), "cannot update DDSketch with NaN");
    util::CheckArg(value >= 0.0,
                   "this DDSketch variant accepts non-negative values");
    ++n_;
    if (value == 0.0) {
      ++zero_count_;
      return;
    }
    ++buckets_[BucketIndex(value)];
    if (buckets_.size() > max_buckets_) CollapseLowest();
  }

  void Merge(const DdSketch& other) {
    util::CheckArg(this != &other, "cannot merge a sketch into itself");
    util::CheckArg(alpha_ == other.alpha_,
                   "cannot merge DDSketches with different alpha");
    n_ += other.n_;
    zero_count_ += other.zero_count_;
    for (const auto& [idx, count] : other.buckets_) {
      buckets_[idx] += count;
    }
    while (buckets_.size() > max_buckets_) CollapseLowest();
  }

  uint64_t n() const { return n_; }
  bool is_empty() const { return n_ == 0; }
  double alpha() const { return alpha_; }
  size_t RetainedItems() const { return buckets_.size() + 1; }

  // Estimated number of stream items <= y (sum of full buckets at or below
  // y's bucket; within-bucket resolution is the alpha-relative value band).
  uint64_t GetRank(double y) const {
    util::CheckState(n_ > 0, "GetRank() on an empty sketch");
    if (y < 0.0) return 0;
    uint64_t rank = zero_count_;
    if (y == 0.0) return rank;
    const int64_t y_idx = BucketIndex(y);
    for (const auto& [idx, count] : buckets_) {
      if (idx > y_idx) break;
      rank += count;
    }
    return std::min(rank, n_);
  }

  // Value whose rank is ~q n, accurate to relative value error alpha.
  double GetQuantile(double q) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty sketch");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    const double target = q * static_cast<double>(n_);
    uint64_t cum = zero_count_;
    if (static_cast<double>(cum) >= target) return 0.0;
    for (const auto& [idx, count] : buckets_) {
      cum += count;
      if (static_cast<double>(cum) >= target) return BucketMidpoint(idx);
    }
    return BucketMidpoint(buckets_.rbegin()->first);
  }

 private:
  int64_t BucketIndex(double value) const {
    return static_cast<int64_t>(std::ceil(std::log(value) / log_gamma_));
  }

  // Midpoint 2 gamma^i / (gamma + 1): relative distance <= alpha to every
  // value in bucket i, which is ((gamma^{i-1}, gamma^i]).
  double BucketMidpoint(int64_t idx) const {
    return 2.0 * std::pow(gamma_, static_cast<double>(idx)) /
           (gamma_ + 1.0);
  }

  void CollapseLowest() {
    // Merge the two lowest buckets (the paper's memory-bounded variant
    // collapses at the cheap end of the distribution).
    auto first = buckets_.begin();
    auto second = std::next(first);
    second->second += first->second;
    buckets_.erase(first);
  }

  double alpha_;
  size_t max_buckets_;
  double gamma_ = 0.0;
  double log_gamma_ = 0.0;
  std::map<int64_t, uint64_t> buckets_;
  uint64_t zero_count_ = 0;
  uint64_t n_ = 0;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_DDSKETCH_H_
