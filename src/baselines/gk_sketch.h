// Greenwald-Khanna sketch (SIGMOD 2001; the paper's reference [10]): the
// classic deterministic *additive*-error quantile summary storing
// O(eps^-1 log(eps n)) tuples. Reimplemented from the published
// description.
//
// Invariant: tuples (v_i, g_i, delta_i) sorted by value with
//   g_i + delta_i <= floor(2 eps n),
// where g_i is the rank gap to the previous tuple and delta_i the rank
// uncertainty. Any rank query is then answerable within eps n.
#ifndef REQSKETCH_BASELINES_GK_SKETCH_H_
#define REQSKETCH_BASELINES_GK_SKETCH_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/validation.h"

namespace req {
namespace baselines {

class GkSketch {
 public:
  explicit GkSketch(double eps) : eps_(eps) {
    util::CheckArg(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    compress_period_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::floor(1.0 / (2.0 * eps_))));
  }

  void Update(double value) {
    ++n_;
    const uint64_t max_gap = MaxGap();
    // Find insertion position: first tuple with v > value.
    size_t pos = 0;
    while (pos < tuples_.size() && tuples_[pos].v <= value) ++pos;
    Tuple t;
    t.v = value;
    t.g = 1;
    // New extreme values are exact; interior insertions inherit the local
    // uncertainty budget.
    t.delta = (pos == 0 || pos == tuples_.size())
                  ? 0
                  : (max_gap >= 1 ? max_gap - 1 : 0);
    tuples_.insert(tuples_.begin() + static_cast<ptrdiff_t>(pos), t);
    if (n_ % compress_period_ == 0) Compress();
  }

  uint64_t n() const { return n_; }
  bool is_empty() const { return n_ == 0; }
  size_t RetainedItems() const { return tuples_.size(); }

  // Estimated number of stream items <= y, within eps * n. For y between
  // consecutive tuples v_{i-1} and v_i, the true rank lies in
  // [rmin_{i-1}, rmax_i - 1]; the midpoint bounds the error by
  // (g_i + delta_i) / 2 <= eps n under the GK invariant.
  uint64_t GetRank(double y) const {
    util::CheckState(n_ > 0, "GetRank() on an empty sketch");
    uint64_t r_min = 0;  // rmin of the last tuple with v <= y
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (tuples_[i].v > y) {
        if (i == 0) return 0;
        return r_min + (tuples_[i].g + tuples_[i].delta) / 2;
      }
      r_min += tuples_[i].g;
    }
    return n_;
  }

  // Value whose rank-uncertainty interval midpoint is closest to q * n.
  double GetQuantile(double q) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty sketch");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    const double target = q * static_cast<double>(n_);
    uint64_t r_min = 0;
    double best_value = tuples_.back().v;
    double best_distance = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < tuples_.size(); ++i) {
      r_min += tuples_[i].g;
      const double midpoint =
          static_cast<double>(r_min) +
          static_cast<double>(tuples_[i].delta) / 2.0;
      const double distance = std::abs(midpoint - target);
      if (distance < best_distance) {
        best_distance = distance;
        best_value = tuples_[i].v;
      }
    }
    return best_value;
  }

 private:
  struct Tuple {
    double v = 0.0;
    uint64_t g = 0;
    uint64_t delta = 0;
  };

  uint64_t MaxGap() const {
    return static_cast<uint64_t>(
        std::floor(2.0 * eps_ * static_cast<double>(n_)));
  }

  // GK compress: merge tuple i into i+1 when the combined uncertainty fits
  // the budget. Never merges the extremes (they stay exact).
  void Compress() {
    const uint64_t max_gap = MaxGap();
    if (tuples_.size() < 3 || max_gap == 0) return;
    std::vector<Tuple> out;
    out.reserve(tuples_.size());
    out.push_back(tuples_.front());
    // Sweep left to right, greedily absorbing tuples into their successor.
    uint64_t pending_g = 0;
    for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
      const Tuple& cur = tuples_[i];
      const Tuple& next = tuples_[i + 1];
      if (pending_g + cur.g + next.g + next.delta <= max_gap) {
        pending_g += cur.g;  // cur absorbed into next
      } else {
        Tuple kept = cur;
        kept.g += pending_g;
        pending_g = 0;
        out.push_back(kept);
      }
    }
    Tuple last = tuples_.back();
    last.g += pending_g;
    out.push_back(last);
    tuples_ = std::move(out);
  }

  double eps_;
  uint64_t compress_period_;
  std::vector<Tuple> tuples_;
  uint64_t n_ = 0;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_GK_SKETCH_H_
