// Zhang-Wang deterministic relative-error summary (CIKM 2007; the paper's
// reference [21]): the O(eps^-1 log^3(eps n)) merge-and-prune scheme that
// was the best deterministic bound before (and matching lower-bound
// pressure after) the REQ paper.
//
// Implementation follows the published multi-level merge-&-prune design,
// using as its PRUNE step the geometric-rank-spacing relative coreset that
// the REQ paper's Appendix A describes (keep an item at estimated rank t,
// then jump to t' ~ t(1 + eps0)): a pruned summary answers rank queries
// within a (1 + eps0) factor of its input summary. The stream is chopped
// into blocks; completed blocks become exact summaries that carry up a
// binary-counter level structure, MERGE-ing (rank functions add; error is
// preserved) and PRUNE-ing (error grows by eps0) at each carry. With
// eps0 = eps / (2 L_max) and at most L_max levels, the total relative
// error stays below eps deterministically -- no randomness anywhere.
//
// Documented simplification vs. [21]: we fix L_max = 28 (inputs up to
// ~2^28 blocks) instead of re-deriving level budgets as n grows; this
// keeps the deterministic eps guarantee and the O(eps^-1 polylog)
// footprint, at the cost of a constant factor -- exactly the trade
// DESIGN.md records.
#ifndef REQSKETCH_BASELINES_ZHANG_WANG_SKETCH_H_
#define REQSKETCH_BASELINES_ZHANG_WANG_SKETCH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/validation.h"

namespace req {
namespace baselines {

class ZhangWangSketch {
 public:
  explicit ZhangWangSketch(double eps) : eps_(eps) {
    util::CheckArg(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    eps0_ = eps_ / (2.0 * kMaxLevels);
    block_size_ = std::max<size_t>(
        64, static_cast<size_t>(std::ceil(4.0 / eps_)));
    buffer_.reserve(block_size_);
  }

  void Update(double value) {
    buffer_.push_back(value);
    ++n_;
    if (buffer_.size() >= block_size_) FlushBlock();
  }

  uint64_t n() const { return n_; }
  bool is_empty() const { return n_ == 0; }

  size_t RetainedItems() const {
    size_t total = buffer_.size();
    for (const auto& level : levels_) {
      if (level) total += level->entries.size();
    }
    return total;
  }

  // Estimated number of stream items <= y; deterministic relative error.
  uint64_t GetRank(double y) const {
    util::CheckState(n_ > 0, "GetRank() on an empty sketch");
    uint64_t rank = 0;
    for (double x : buffer_) {
      if (x <= y) ++rank;
    }
    for (const auto& level : levels_) {
      if (level) rank += level->RankOf(y);
    }
    return rank;
  }

  double GetQuantile(double q) const {
    util::CheckState(n_ > 0, "GetQuantile() on an empty sketch");
    util::CheckArg(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
    // Candidates: every stored value; return the smallest whose estimated
    // rank reaches q n.
    std::vector<double> candidates = buffer_;
    for (const auto& level : levels_) {
      if (!level) continue;
      for (const auto& [v, r] : level->entries) candidates.push_back(v);
    }
    std::sort(candidates.begin(), candidates.end());
    const double target = std::max(1.0, q * static_cast<double>(n_));
    for (double v : candidates) {
      if (static_cast<double>(GetRank(v)) >= target) return v;
    }
    return candidates.back();
  }

 private:
  // Supports inputs up to block_size * 2^28 items (~10^10 at eps = 0.01)
  // with the deterministic eps guarantee intact; see the header comment.
  static constexpr int kMaxLevels = 28;

  // A summary: values sorted ascending with estimated inclusive ranks
  // within the summarized substream.
  struct Summary {
    std::vector<std::pair<double, uint64_t>> entries;  // (value, est rank)
    uint64_t n = 0;

    // Estimated count of substream items <= y: the estimated rank of the
    // largest stored value <= y.
    uint64_t RankOf(double y) const {
      // First entry with value > y.
      auto it = std::upper_bound(
          entries.begin(), entries.end(), y,
          [](double value, const auto& e) { return value < e.first; });
      if (it == entries.begin()) return 0;
      return std::prev(it)->second;
    }
  };

  // PRUNE: keep entries at geometrically spaced estimated ranks (the
  // Appendix A relative coreset). Rank queries against the pruned summary
  // differ from the input summary by a factor <= (1 + eps0).
  Summary Prune(const Summary& in) const {
    Summary out;
    out.n = in.n;
    uint64_t target = 1;
    for (size_t i = 0; i < in.entries.size(); ++i) {
      const uint64_t r = in.entries[i].second;
      if (r >= target || i + 1 == in.entries.size()) {
        out.entries.push_back(in.entries[i]);
        const uint64_t next = static_cast<uint64_t>(
            std::floor(static_cast<double>(r) * (1.0 + eps0_))) + 1;
        target = std::max(r + 1, next);
      }
    }
    return out;
  }

  // MERGE: rank functions add; every stored value of either input becomes
  // an entry with combined estimated rank. Error is the max of the inputs'
  // errors (no growth).
  Summary MergeSummaries(const Summary& a, const Summary& b) const {
    Summary out;
    out.n = a.n + b.n;
    out.entries.reserve(a.entries.size() + b.entries.size());
    for (const auto& [v, r] : a.entries) {
      out.entries.emplace_back(v, r + b.RankOf(v));
    }
    for (const auto& [v, r] : b.entries) {
      out.entries.emplace_back(v, r + a.RankOf(v));
    }
    std::sort(out.entries.begin(), out.entries.end());
    // Duplicate values: keep the largest estimated rank (inclusive
    // semantics) to keep entries monotone.
    std::vector<std::pair<double, uint64_t>> dedup;
    for (const auto& e : out.entries) {
      if (!dedup.empty() && dedup.back().first == e.first) {
        dedup.back().second = std::max(dedup.back().second, e.second);
      } else {
        dedup.push_back(e);
      }
    }
    out.entries = std::move(dedup);
    return out;
  }

  void FlushBlock() {
    // Exact summary of the block.
    std::sort(buffer_.begin(), buffer_.end());
    Summary carry;
    carry.n = buffer_.size();
    carry.entries.reserve(buffer_.size());
    for (size_t i = 0; i < buffer_.size(); ++i) {
      // With duplicates, only the last occurrence carries the full
      // inclusive rank; MergeSummaries/RankOf use upper_bound so the last
      // entry of a run wins.
      carry.entries.emplace_back(buffer_[i], i + 1);
    }
    buffer_.clear();
    carry = Prune(carry);

    // Binary-counter carry up the levels.
    for (size_t h = 0;; ++h) {
      if (h == levels_.size()) levels_.emplace_back();
      if (!levels_[h]) {
        levels_[h] = std::move(carry);
        break;
      }
      carry = Prune(MergeSummaries(*levels_[h], carry));
      levels_[h].reset();
    }
  }

  double eps_;
  double eps0_;
  size_t block_size_;
  std::vector<double> buffer_;
  std::vector<std::optional<Summary>> levels_;
  uint64_t n_ = 0;
};

}  // namespace baselines
}  // namespace req

#endif  // REQSKETCH_BASELINES_ZHANG_WANG_SKETCH_H_
